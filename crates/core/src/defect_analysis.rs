//! Table II campaign: minimum defect resistance causing a DRF_DS, per
//! defect × case study, minimized over the PVT grid.

use std::collections::HashMap;
use std::path::PathBuf;

use process::{ProcessCorner, PvtCondition};
use regulator::characterize::{
    healthy_seed, min_resistance_seeded, CharacterizeOptions, DrfCriterion,
};
use regulator::{Defect, RegulatorDesign, VrefTap};
use sram::drv::{drv_ds, DrvOptions};
use sram::{ArrayLoad, CellInstance, CellPopulation, StoredBit};

use crate::campaign::{
    publish_coverage, Checkpoint, Coverage, Heartbeat, PointFailure, PointTimer, Quarantine,
};
use crate::case_study::CaseStudy;
use crate::executor::{parallel_map_isolated, WorkOutcome};

/// The regulator configuration rule of §IV.A: pick the tap that puts
/// `Vreg` as close as possible to — but not below — the worst-case
/// retention voltage (730 mV) at each supply.
pub fn tap_for_vdd(vdd: f64) -> VrefTap {
    if vdd >= 1.15 {
        VrefTap::V64 // 1.2 V → 0.768 V
    } else if vdd >= 1.05 {
        VrefTap::V70 // 1.1 V → 0.770 V
    } else {
        VrefTap::V74 // 1.0 V → 0.740 V
    }
}

/// Options of the Table II campaign.
#[derive(Debug, Clone)]
pub struct Table2Options {
    /// Corners in the PVT grid.
    pub corners: Vec<ProcessCorner>,
    /// Temperatures in the grid, °C.
    pub temperatures: Vec<f64>,
    /// Supplies in the grid (each paired with [`tap_for_vdd`]).
    pub supplies: Vec<f64>,
    /// Defects characterized (default: the paper's 17 Table II rows).
    pub defects: Vec<Defect>,
    /// Case studies characterized (default: the five `-1` variants;
    /// the `-0` rows are mirrors).
    pub case_studies: Vec<CaseStudy>,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// Min-resistance search tuning.
    pub characterize: CharacterizeOptions,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Samples of the array-load I(V) curve.
    pub load_points: usize,
    /// Fault-injection hook for resilience tests: `(defect number,
    /// case-study number)` cells whose every grid point is forced to
    /// report a synthetic non-convergence instead of being solved.
    pub inject_failures: Vec<(u8, u8)>,
    /// Fault-injection hook for the ERC pre-flight gate: `(defect
    /// number, case-study number)` cells whose grid points get a
    /// deliberately severed (orphan-node) regulator netlist, so the
    /// static checks must reject them before any Newton iteration.
    pub inject_disconnects: Vec<(u8, u8)>,
    /// Fault-injection hook for the executor's panic isolation:
    /// `(defect number, case-study number)` cells whose evaluation
    /// deliberately panics on the worker. The campaign must record the
    /// cell as a panicked [`PointFailure`] and keep going — surviving
    /// cells, checkpoint rows and the coverage footer stay
    /// byte-identical at any `--jobs` count.
    pub inject_panics: Vec<(u8, u8)>,
    /// When set, completed `(defect, case study)` cells are appended to
    /// this tab-separated file and a rerun pointed at the same path
    /// resumes, skipping cells already logged.
    pub checkpoint: Option<PathBuf>,
    /// Worker threads the campaign fans its (defect, case-study) cells
    /// across. `0` means "available parallelism"; `1` runs the
    /// sequential inline path. Output tables, checkpoint rows and
    /// coverage footers are byte-identical for every value (see
    /// [`crate::executor`]).
    pub jobs: usize,
    /// Seed each cell's resistance search from the healthy operating
    /// point pre-solved at its grid condition
    /// ([`regulator::characterize::healthy_seed`]) instead of the cold
    /// DC guess. Purely an accelerator: a missing or stale seed
    /// degrades to a cold start.
    pub warm_start: bool,
}

impl Table2Options {
    /// The paper's full grid (5 corners × 3 temperatures × 3
    /// supplies). Expensive: minutes of CPU.
    pub fn paper() -> Self {
        Table2Options {
            corners: ProcessCorner::ALL.to_vec(),
            temperatures: vec![-30.0, 25.0, 125.0],
            supplies: vec![1.0, 1.1, 1.2],
            defects: Defect::table2_rows(),
            case_studies: CaseStudy::ones(),
            design: RegulatorDesign::lp40nm(),
            characterize: CharacterizeOptions::default(),
            drv: DrvOptions::default(),
            load_points: 9,
            inject_failures: Vec::new(),
            inject_disconnects: Vec::new(),
            inject_panics: Vec::new(),
            checkpoint: None,
            jobs: 0,
            warm_start: true,
        }
    }

    /// A reduced grid hitting the conditions the paper reports as worst
    /// cases (`fs`/`sf`/`fast` corners, hot and cold).
    pub fn reduced() -> Self {
        Table2Options {
            corners: vec![
                ProcessCorner::FastNSlowP,
                ProcessCorner::SlowNFastP,
                ProcessCorner::Fast,
            ],
            temperatures: vec![-30.0, 125.0],
            ..Self::paper()
        }
    }

    /// A single-condition smoke configuration for tests.
    pub fn quick() -> Self {
        Table2Options {
            corners: vec![ProcessCorner::FastNSlowP],
            temperatures: vec![125.0],
            supplies: vec![1.0],
            characterize: CharacterizeOptions::coarse(),
            drv: DrvOptions::coarse(),
            load_points: 5,
            ..Self::paper()
        }
    }
}

/// One (defect, case study) cell of Table II.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table2Cell {
    /// Minimum resistance causing a DRF_DS, minimized over the grid;
    /// `None` renders as the paper's `> 500M`.
    pub min_ohms: Option<f64>,
    /// The grid condition achieving the minimum.
    pub pvt: Option<PvtCondition>,
    /// Rail voltage at the failing point (diagnostic).
    pub vddcc: Option<f64>,
    /// Grid points of this cell left unsolved after the rescue ladder;
    /// when non-zero the cell's minimum is over the points that *did*
    /// complete.
    pub failed_points: usize,
}

impl Table2Cell {
    fn empty() -> Self {
        Table2Cell {
            min_ohms: None,
            pvt: None,
            vddcc: None,
            failed_points: 0,
        }
    }
}

/// One defect row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The characterized defect.
    pub defect: Defect,
    /// One cell per case study, in `options.case_studies` order.
    pub cells: Vec<Table2Cell>,
}

/// The full table, possibly partial: grid points that stayed unsolved
/// after the solver's rescue ladder are listed in `failures` and
/// accounted in `coverage` instead of aborting the campaign.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// Case studies, column order.
    pub case_studies: Vec<CaseStudy>,
    /// Rows in `options.defects` order.
    pub rows: Vec<Table2Row>,
    /// Grid points (or shared contexts) left unsolved this run.
    pub failures: Vec<PointFailure>,
    /// Attempted/completed accounting over all grid points (resumed
    /// cells count with the failure tally recorded at checkpoint time).
    pub coverage: Coverage,
}

impl Table2 {
    /// The cell for (defect, case-study number), if present.
    pub fn cell(&self, defect: Defect, cs_number: u8) -> Option<&Table2Cell> {
        let col = self
            .case_studies
            .iter()
            .position(|c| c.number == cs_number)?;
        let row = self.rows.iter().find(|r| r.defect == defect)?;
        row.cells.get(col)
    }
}

/// Per-(case-study, corner, temperature, vdd) context, shared across
/// defects: the stressed cell, its retention voltage, the array load,
/// and — when warm starts are on — the healthy circuit's converged
/// state, the seed every resistance search at this condition starts
/// Newton from.
struct GridContext {
    stressed: CellInstance,
    drv: f64,
    load: ArrayLoad,
    seed: Option<Vec<f64>>,
}

/// The context-cache key: (cs number, corner, temp, vdd). The tap is
/// derived from vdd ([`tap_for_vdd`]), so it needs no key component.
type CtxKey = (u8, &'static str, i64, i64);

fn ctx_key(cs_number: u8, pvt: PvtCondition) -> CtxKey {
    (
        cs_number,
        pvt.corner.abbreviation(),
        pvt.temp_c as i64,
        (pvt.vdd * 100.0) as i64,
    )
}

/// Stable checkpoint key of one (defect, case-study) cell.
fn cell_key(defect: Defect, cs_number: u8) -> String {
    format!("df{}/cs{}", defect.number(), cs_number)
}

fn checkpoint_fields(key: &str, cell: &Table2Cell) -> Vec<String> {
    // `{x:e}` with no precision prints the shortest string that parses
    // back to the same f64 bit pattern — a resumed cell is then
    // bit-identical to the fresh-computed one. (`{x:.6e}` used to cut
    // to 6 significant figures, so resumed Table II cells drifted.)
    let opt = |v: Option<f64>| v.map_or_else(|| "-".to_string(), |x| format!("{x:e}"));
    vec![
        key.to_string(),
        opt(cell.min_ohms),
        cell.pvt
            .map_or_else(|| "-".to_string(), |p| p.corner.abbreviation().to_string()),
        opt(cell.pvt.map(|p| p.vdd)),
        opt(cell.pvt.map(|p| p.temp_c)),
        opt(cell.vddcc),
        cell.failed_points.to_string(),
    ]
}

/// Parses a checkpoint row back into a cell; `None` (recompute) on any
/// malformed or stale-format field.
fn checkpoint_cell(fields: &[String]) -> Option<Table2Cell> {
    let opt = |s: &str| -> Option<Option<f64>> {
        if s == "-" {
            Some(None)
        } else {
            s.parse::<f64>().ok().map(Some)
        }
    };
    if fields.len() < 6 {
        return None;
    }
    let min_ohms = opt(&fields[0])?;
    let pvt = if fields[1] == "-" {
        None
    } else {
        let corner = *ProcessCorner::ALL
            .iter()
            .find(|c| c.abbreviation() == fields[1])?;
        Some(PvtCondition::new(
            corner,
            opt(&fields[2])??,
            opt(&fields[3])??,
        ))
    };
    Some(Table2Cell {
        min_ohms,
        pvt,
        vddcc: opt(&fields[4])?,
        failed_points: fields[5].parse().ok()?,
    })
}

/// Runs the campaign with per-grid-point fault isolation.
///
/// Each grid point runs independently: a point that the solver's
/// escalation ladder cannot rescue is recorded in the returned table's
/// `failures`/`coverage` (and in the owning cell's `failed_points`)
/// rather than aborting the whole campaign. When
/// [`Table2Options::checkpoint`] is set, finished cells are appended
/// there and a rerun resumes past them.
///
/// # Errors
///
/// Non-retryable failures — invalid netlists, bad sweep setups, and
/// checkpoint I/O problems (surfaced as
/// [`anasim::Error::InvalidValue`]) — still abort: they mean the
/// campaign itself is misconfigured, not that one point is hard.
pub fn table2(options: &Table2Options) -> Result<Table2, anasim::Error> {
    let _span = obs::span("table2");
    let campaign_start = std::time::Instant::now();
    let grid_size = options.corners.len() * options.temperatures.len() * options.supplies.len();
    let checkpoint = options.checkpoint.as_ref().map(Checkpoint::new);
    let io_err = |e: std::io::Error| anasim::Error::InvalidValue {
        device: "checkpoint".into(),
        what: e.to_string(),
    };
    let resumed: HashMap<String, Table2Cell> = match &checkpoint {
        Some(cp) => cp
            .rows_by_key()
            .map_err(io_err)?
            .into_iter()
            .filter_map(|(k, fields)| checkpoint_cell(&fields).map(|c| (k, c)))
            .collect(),
        None => HashMap::new(),
    };
    // The quarantine sidecar remembers cells that died identically on
    // earlier resume attempts; those are turned away up front instead
    // of re-dying on every resume forever.
    let mut quarantine = match &checkpoint {
        Some(cp) => Some(Quarantine::load(Quarantine::sidecar_path(cp.path())).map_err(io_err)?),
        None => None,
    };
    // Snapshot at load time: a death recorded *during this run* must
    // not retroactively rewrite this run's own failure record — the
    // quarantine only gates future runs.
    let quarantined_at_start: std::collections::HashSet<String> = quarantine
        .as_ref()
        .map(|q| q.quarantined_keys().iter().map(|s| s.to_string()).collect())
        .unwrap_or_default();
    let skipped = |defect: Defect, cs: &CaseStudy| {
        resumed.contains_key(&cell_key(defect, cs.number))
            || quarantined_at_start.contains(&cell_key(defect, cs.number))
            || options
                .inject_failures
                .contains(&(defect.number(), cs.number))
            || options
                .inject_disconnects
                .contains(&(defect.number(), cs.number))
            || options
                .inject_panics
                .contains(&(defect.number(), cs.number))
    };

    // ---- Phase A: shared grid contexts, in deterministic grid order.
    // Built for every (cs, pvt) some non-resumed, non-injected cell
    // will touch. Pre-solving them up front (instead of the old lazy
    // per-encounter build) keeps the warm-start cache population
    // deterministic — a racy lazy insert under parallelism could vary
    // which solve seeded the cache between runs.
    let mut ctx_items: Vec<(usize, PvtCondition)> = Vec::new();
    for (ci, cs) in options.case_studies.iter().enumerate() {
        if !options.defects.iter().any(|&d| !skipped(d, cs)) {
            continue;
        }
        for &corner in &options.corners {
            for &temp in &options.temperatures {
                for &vdd in &options.supplies {
                    ctx_items.push((ci, PvtCondition::new(corner, vdd, temp)));
                }
            }
        }
    }
    let built = parallel_map_isolated(
        options.jobs,
        &ctx_items,
        |_, &(ci, pvt)| {
            let cs = &options.case_studies[ci];
            let result = {
                let _span = obs::span("context");
                build_context(cs, pvt, options)
            };
            result.map(|mut ctx| {
                if options.warm_start {
                    // A failed healthy solve only costs the warm start:
                    // the searches at this condition run cold, exactly
                    // as before the cache existed.
                    ctx.seed = healthy_seed(
                        &options.design,
                        pvt,
                        tap_for_vdd(pvt.vdd),
                        &ctx.load,
                        &options.characterize,
                    )
                    .ok();
                }
                ctx
            })
        },
        |_, _| {},
    );
    // A context whose construction failed is cached poisoned (`None`)
    // so the failure is charged once here and every grid point that
    // needs it is tallied as failed without re-solving.
    let mut contexts: HashMap<CtxKey, Option<GridContext>> = HashMap::new();
    let mut failures: Vec<PointFailure> = Vec::new();
    for (&(ci, pvt), outcome) in ctx_items.iter().zip(built) {
        let cs = &options.case_studies[ci];
        let result = outcome.unwrap_or_else(|what| Err(anasim::Error::Panicked { what }));
        match result {
            Ok(ctx) => {
                contexts.insert(ctx_key(cs.number, pvt), Some(ctx));
            }
            Err(e) if e.is_recordable() => {
                let attempts = if e.is_retryable() {
                    options.drv.retry.max_attempts
                } else {
                    0
                };
                failures.push(PointFailure::new(
                    None,
                    Some(cs.number),
                    Some(pvt),
                    e,
                    attempts,
                ));
                contexts.insert(ctx_key(cs.number, pvt), None);
            }
            Err(e) => return Err(e),
        }
    }

    // ---- Phase B: the (defect × case-study) cells, fanned across
    // workers. Each worker owns its cell completely (grid loop, solver
    // tallies, local failure list); the single-threaded `on_ready`
    // callback appends checkpoint rows in strict grid order, so an
    // interrupted parallel run resumes exactly like a sequential one.
    let mut cell_items: Vec<(Defect, usize)> = Vec::new();
    for &d in &options.defects {
        for (ci, cs) in options.case_studies.iter().enumerate() {
            if !resumed.contains_key(&cell_key(d, cs.number))
                && !quarantined_at_start.contains(&cell_key(d, cs.number))
            {
                cell_items.push((d, ci));
            }
        }
    }
    let mut ckpt_err: Option<std::io::Error> = None;
    let mut halted = false;
    let mut running = Coverage::default();
    for cell in resumed.values() {
        running.merge(resumed_coverage(cell, grid_size));
    }
    // Periodic progress events with ETA and stall detection, paced by
    // the single-writer callback (no extra thread, no lock).
    // `running` already carries the resumed cells' coverage, so the
    // target is the fresh cells' grid plus whatever was pre-counted.
    let mut heartbeat = Heartbeat::new("table2", grid_size * cell_items.len() + running.attempted);
    let done = parallel_map_isolated(
        options.jobs,
        &cell_items,
        |_, &(defect, ci)| evaluate_cell(defect, &options.case_studies[ci], options, &contexts),
        |i, outcome| {
            heartbeat.tick(running.completed);
            let (defect, ci) = cell_items[i];
            let key = cell_key(defect, options.case_studies[ci].number);
            match outcome {
                WorkOutcome::Done(Ok(cell)) => {
                    running.merge(cell.coverage);
                    if halted || ckpt_err.is_some() {
                        return;
                    }
                    if let Some(cp) = &checkpoint {
                        if let Err(e) = cp.append(&checkpoint_fields(&key, &cell.cell)) {
                            ckpt_err = Some(e);
                            return;
                        }
                    }
                    obs::progress(&format!("table2 cell {key} done ({running})"));
                }
                // A panicked cell is a recorded casualty, *not* a halt:
                // it is deliberately left out of the checkpoint so a
                // resumed run recomputes it, and the surviving cells'
                // checkpoint stream is exactly what a run without the
                // panic would have written around it. The death *is*
                // logged in the quarantine sidecar: a cell that dies
                // the same way on consecutive resumes loses its retry
                // rights.
                WorkOutcome::Panicked { message } => {
                    if let Some(q) = &mut quarantine {
                        if ckpt_err.is_none() {
                            if let Err(e) = q.record(&key, message) {
                                ckpt_err = Some(e);
                            }
                        }
                    }
                    running.merge(Coverage {
                        attempted: grid_size,
                        completed: 0,
                        elapsed_s: 0.0,
                    });
                    obs::progress(&format!("table2 cell {key} panicked ({running})"));
                }
                // A non-recordable error will abort the campaign once
                // the scope joins; stop checkpointing cells past it so
                // the file matches what a sequential run would have
                // logged before the abort.
                WorkOutcome::Done(Err(_)) => halted = true,
            }
        },
    );
    if let Some(e) = ckpt_err {
        return Err(io_err(e));
    }

    // ---- Assembly, in (defect × case-study) grid order.
    let mut done_iter = done.into_iter();
    let mut rows = Vec::with_capacity(options.defects.len());
    let mut coverage = Coverage::default();
    for &defect in &options.defects {
        let mut cells = Vec::with_capacity(options.case_studies.len());
        for cs in &options.case_studies {
            if let Some(cell) = resumed.get(&cell_key(defect, cs.number)) {
                coverage.merge(resumed_coverage(cell, grid_size));
                cells.push(*cell);
                continue;
            }
            if let Some(err) = quarantined_at_start
                .contains(&cell_key(defect, cs.number))
                .then(|| {
                    quarantine
                        .as_ref()
                        .and_then(|q| q.reject(&cell_key(defect, cs.number)))
                })
                .flatten()
            {
                // Turned away before any solve: the whole cell's grid
                // is charged as lost, exactly like a pre-flight ERC
                // rejection (attempts: 0).
                coverage.merge(Coverage {
                    attempted: grid_size,
                    completed: 0,
                    elapsed_s: 0.0,
                });
                failures.push(PointFailure::new(
                    Some(defect),
                    Some(cs.number),
                    None,
                    err,
                    0,
                ));
                cells.push(Table2Cell {
                    failed_points: grid_size,
                    ..Table2Cell::empty()
                });
                continue;
            }
            let outcome = done_iter
                .next()
                .expect("the executor returns one result per non-resumed cell");
            let cell = match outcome {
                WorkOutcome::Done(result) => result?,
                // The worker evaluating this cell panicked: the whole
                // cell's grid is lost, charged as one panicked failure.
                WorkOutcome::Panicked { message } => CellDone {
                    cell: Table2Cell {
                        failed_points: grid_size,
                        ..Table2Cell::empty()
                    },
                    failures: vec![PointFailure::new(
                        Some(defect),
                        Some(cs.number),
                        None,
                        anasim::Error::Panicked { what: message },
                        0,
                    )],
                    coverage: Coverage {
                        attempted: grid_size,
                        completed: 0,
                        elapsed_s: 0.0,
                    },
                },
            };
            coverage.merge(cell.coverage);
            failures.extend(cell.failures);
            cells.push(cell.cell);
        }
        rows.push(Table2Row { defect, cells });
    }
    coverage.elapsed_s = campaign_start.elapsed().as_secs_f64();
    publish_coverage(&coverage);
    Ok(Table2 {
        case_studies: options.case_studies.clone(),
        rows,
        failures,
        coverage,
    })
}

/// Coverage contribution of a checkpoint-resumed cell: its grid points
/// count as attempted with the failure tally recorded at checkpoint
/// time, and no wall-clock (nothing was computed this run).
fn resumed_coverage(cell: &Table2Cell, grid_size: usize) -> Coverage {
    Coverage {
        attempted: grid_size,
        completed: grid_size - cell.failed_points.min(grid_size),
        elapsed_s: 0.0,
    }
}

/// One fully evaluated (defect, case-study) cell with its local
/// bookkeeping, produced on a worker thread and merged in grid order.
struct CellDone {
    cell: Table2Cell,
    failures: Vec<PointFailure>,
    coverage: Coverage,
}

/// Evaluates one cell's full PVT grid. Runs on a worker thread: all
/// state is local, contexts are read-only shared.
fn evaluate_cell(
    defect: Defect,
    cs: &CaseStudy,
    options: &Table2Options,
    contexts: &HashMap<CtxKey, Option<GridContext>>,
) -> Result<CellDone, anasim::Error> {
    let key = cell_key(defect, cs.number);
    let mut best = Table2Cell::empty();
    let mut failures: Vec<PointFailure> = Vec::new();
    let mut coverage = Coverage::default();
    let injected = options
        .inject_failures
        .contains(&(defect.number(), cs.number));
    let disconnected = options
        .inject_disconnects
        .contains(&(defect.number(), cs.number));
    // Resilience-test hook: die on the worker exactly as an untrusted
    // model evaluation would, and let the executor's per-point
    // isolation turn it into a recorded failure.
    assert!(
        !options
            .inject_panics
            .contains(&(defect.number(), cs.number)),
        "injected panic evaluating cell {key}"
    );
    for &corner in &options.corners {
        for &temp in &options.temperatures {
            for &vdd in &options.supplies {
                let pvt = PvtCondition::new(corner, vdd, temp);
                let tap = tap_for_vdd(vdd);
                if injected {
                    best.failed_points += 1;
                    coverage.record_failure();
                    failures.push(PointFailure::new(
                        Some(defect),
                        Some(cs.number),
                        Some(pvt),
                        anasim::Error::NoConvergence {
                            iterations: 0,
                            residual: f64::INFINITY,
                        },
                        options.characterize.retry.max_attempts,
                    ));
                    continue;
                }
                if disconnected {
                    // Build the circuit this point would solve,
                    // sever a node, and let the pre-flight gate
                    // reject it — no solve is ever attempted.
                    let mut circuit = regulator::RegulatorCircuit::new(
                        &options.design,
                        pvt,
                        tap,
                        regulator::FeedMode::Static,
                    )?;
                    circuit.add_orphan_node("injected_disconnect");
                    let error = circuit
                        .preflight()
                        .err()
                        .unwrap_or(anasim::Error::InvalidValue {
                            device: "inject_disconnects".into(),
                            what: "pre-flight accepted a severed netlist".into(),
                        });
                    best.failed_points += 1;
                    coverage.record_failure();
                    failures.push(PointFailure::new(
                        Some(defect),
                        Some(cs.number),
                        Some(pvt),
                        error,
                        0,
                    ));
                    continue;
                }
                let Some(Some(ctx)) = contexts.get(&ctx_key(cs.number, pvt)) else {
                    // Poisoned (or, impossibly, missing) context: the
                    // build failure was charged once in phase A.
                    best.failed_points += 1;
                    coverage.record_failure();
                    continue;
                };
                let criterion = DrfCriterion {
                    stressed: &ctx.stressed,
                    stored: StoredBit::One,
                    drv: ctx.drv,
                };
                let timer = PointTimer::start(format!("{key} @ {pvt}"));
                match min_resistance_seeded(
                    &options.design,
                    pvt,
                    tap,
                    defect,
                    &ctx.load,
                    &criterion,
                    &options.characterize,
                    ctx.seed.as_deref(),
                ) {
                    Ok(found) => {
                        timer.finish();
                        coverage.record_ok();
                        if let Some(ohms) = found.ohms {
                            if best.min_ohms.is_none_or(|b| ohms < b) {
                                best.min_ohms = Some(ohms);
                                best.pvt = Some(pvt);
                                best.vddcc = found.vddcc_at_fault;
                            }
                        }
                    }
                    Err(e) if e.is_recordable() => {
                        // Label the outcome so the flight recorder
                        // retains this point's convergence trajectory
                        // unconditionally (failures always keep their
                        // ring; successes compete for the slowest-k
                        // slots).
                        timer.finish_failed(match &e {
                            anasim::Error::BudgetExceeded { .. } => "budget-exhausted",
                            anasim::Error::Panicked { .. } => "panicked",
                            _ => "failed",
                        });
                        best.failed_points += 1;
                        coverage.record_failure();
                        // Pre-flight rejections never reach the
                        // solver, so no attempts were spent.
                        let attempts = if e.is_retryable() {
                            options.characterize.retry.max_attempts
                        } else {
                            0
                        };
                        failures.push(PointFailure::new(
                            Some(defect),
                            Some(cs.number),
                            Some(pvt),
                            e,
                            attempts,
                        ));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }
    Ok(CellDone {
        cell: best,
        failures,
        coverage,
    })
}

/// Builds the per-(case study, PVT) shared context.
fn build_context(
    cs: &CaseStudy,
    pvt: PvtCondition,
    options: &Table2Options,
) -> Result<GridContext, anasim::Error> {
    let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
    let drv = drv_ds(&stressed, StoredBit::One, &options.drv)?.drv;
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(
        &base,
        &[CellPopulation {
            pattern: cs.pattern(),
            count: cs.cell_count(),
            stored: StoredBit::One,
        }],
        256 * 1024,
        1.3,
        options.load_points,
    )?;
    Ok(GridContext {
        stressed,
        drv,
        load,
        seed: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tap_matching_rule() {
        assert_eq!(tap_for_vdd(1.0), VrefTap::V74);
        assert_eq!(tap_for_vdd(1.1), VrefTap::V70);
        assert_eq!(tap_for_vdd(1.2), VrefTap::V64);
        // Expected Vreg stays at or just above 730 mV.
        for vdd in [1.0, 1.1, 1.2] {
            let vreg = tap_for_vdd(vdd).fraction() * vdd;
            assert!((0.73..0.78).contains(&vreg), "vreg {vreg} at vdd {vdd}");
        }
    }

    /// Pulls the cell for (defect, case study), failing with the grid
    /// coordinate in the message instead of a bare unwrap.
    fn cell_at(table: &Table2, df: u8, cs: u8) -> Table2Cell {
        *table.cell(Defect::new(df), cs).unwrap_or_else(|| {
            panic!("campaign produced no cell at (Df{df}, CS{cs})");
        })
    }

    #[test]
    fn quick_campaign_over_two_defects() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(18)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        let table = table2(&opts).unwrap();
        assert_eq!(table.rows.len(), 2);
        assert!(
            table.coverage.is_complete() && table.failures.is_empty(),
            "healthy quick campaign must be complete, got {} with {} failures",
            table.coverage,
            table.failures.len()
        );
        // 2 defects × 2 CS × 1 grid point.
        assert_eq!(table.coverage.attempted, 4);
        // Df16 hurts; lower-DRV CS2 needs more resistance than CS1.
        let cs1 = cell_at(&table, 16, 1);
        let cs2 = cell_at(&table, 16, 2);
        let r1 = cs1
            .min_ohms
            .unwrap_or_else(|| panic!("no DRF threshold at (Df16, CS1): {cs1:?}"));
        let r2 = cs2
            .min_ohms
            .unwrap_or_else(|| panic!("no DRF threshold at (Df16, CS2): {cs2:?}"));
        assert!(
            r1 < r2,
            "CS1 (highest DRV) must need the least resistance: {r1} vs {r2}"
        );
        // The negligible sense-line defect never fails.
        let neg = cell_at(&table, 18, 1);
        assert_eq!(neg.min_ohms, None, "(Df18, CS1) unexpectedly faulted");
        assert_eq!(neg.failed_points, 0, "(Df18, CS1) lost grid points");
    }

    #[test]
    fn injected_failure_is_isolated_not_fatal() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(19)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        // Force every grid point of (Df19, CS1) to fail.
        opts.inject_failures = vec![(19, 1)];
        let table = table2(&opts).expect("campaign must survive an unsolvable point");

        // The poisoned cell carries the tally, not a result.
        let hurt = cell_at(&table, 19, 1);
        assert_eq!(hurt.failed_points, 1);
        assert_eq!(hurt.min_ohms, None);
        // Every other cell still completed normally.
        assert!(cell_at(&table, 16, 1).min_ohms.is_some());
        assert!(cell_at(&table, 16, 2).min_ohms.is_some());
        assert_eq!(cell_at(&table, 19, 2).failed_points, 0);
        // And the bookkeeping reflects exactly one lost point.
        assert_eq!(table.failures.len(), 1);
        let f = &table.failures[0];
        assert_eq!(f.defect, Some(Defect::new(19)));
        assert_eq!(f.case_study, Some(1));
        assert!(f.error.is_retryable());
        assert!(f.attempts >= 1);
        assert_eq!(table.coverage.attempted, 4);
        assert_eq!(table.coverage.completed, 3);
        assert!(!table.coverage.is_complete());
    }

    #[test]
    fn injected_panic_is_isolated_not_fatal() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(19)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        // The worker evaluating (Df19, CS1) dies mid-campaign.
        opts.inject_panics = vec![(19, 1)];

        opts.jobs = 1;
        let sequential = table2(&opts).expect("campaign must survive a panicking cell");
        opts.jobs = 4;
        let parallel = table2(&opts).expect("campaign must survive a panicking cell");
        assert_eq!(
            table_fingerprint(&sequential),
            table_fingerprint(&parallel),
            "surviving cells must be byte-identical at any --jobs count"
        );

        // The lost cell carries the tally; survivors are untouched.
        let hurt = cell_at(&sequential, 19, 1);
        assert_eq!(hurt.failed_points, 1);
        assert_eq!(hurt.min_ohms, None);
        assert!(cell_at(&sequential, 16, 1).min_ohms.is_some());
        assert!(cell_at(&sequential, 16, 2).min_ohms.is_some());
        assert_eq!(cell_at(&sequential, 19, 2).failed_points, 0);

        // Exactly one failure, marked as a caught panic.
        assert_eq!(sequential.failures.len(), 1);
        let f = &sequential.failures[0];
        assert!(f.panicked, "failure must carry the panicked marker");
        assert!(f.error.is_panic());
        assert_eq!(f.defect, Some(Defect::new(19)));
        assert_eq!(f.case_study, Some(1));
        assert_eq!(f.attempts, 0);
        assert!(
            f.error.to_string().contains("injected panic"),
            "the panic message survives: {}",
            f.error
        );
        assert!(!sequential.coverage.is_complete());
        assert_eq!(sequential.coverage.completed, 3);

        // The report footer renders the casualty.
        let footer =
            crate::campaign::completeness_footer(&sequential.coverage, &sequential.failures);
        assert!(footer.contains("[panicked]"), "{footer}");
    }

    #[test]
    fn panicked_cell_is_left_out_of_the_checkpoint() {
        let dir = std::env::temp_dir().join("drftest-table2-panic-ckpt");
        let path = dir.join("table2.tsv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(19)];
        opts.case_studies = vec![CaseStudy::new(1, StoredBit::One)];
        opts.inject_panics = vec![(19, 1)];
        opts.checkpoint = Some(path.clone());
        opts.jobs = 2;
        let first = table2(&opts).expect("campaign must survive a panicking cell");

        // The checkpoint stream stays valid: the surviving cell is
        // logged, the panicked one is not — a resume recomputes it.
        let logged = Checkpoint::new(&path).completed_keys().unwrap();
        assert!(logged.contains("df16/cs1"), "surviving cell must be logged");
        assert!(
            !logged.contains("df19/cs1"),
            "a panicked cell must never be checkpointed"
        );

        // Resume: the healed cell (hook removed) is recomputed and the
        // table completes.
        opts.inject_panics = Vec::new();
        let healed = table2(&opts).unwrap();
        assert!(healed.coverage.is_complete(), "{}", healed.coverage);
        assert!(
            cell_at(&healed, 19, 1).min_ohms.is_some() || {
                // Df19 may legitimately not fault at the quick grid point;
                // completeness is the contract under test.
                cell_at(&healed, 19, 1).failed_points == 0
            }
        );
        assert_eq!(first.coverage.attempted, healed.coverage.attempted);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repeat_identical_panics_quarantine_the_cell() {
        let dir = std::env::temp_dir().join("drftest-table2-quarantine");
        let path = dir.join("table2.tsv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(19)];
        opts.case_studies = vec![CaseStudy::new(1, StoredBit::One)];
        opts.inject_panics = vec![(19, 1)];
        opts.checkpoint = Some(path.clone());

        // Runs 1 and 2: the cell dies identically both times (run 2
        // resumed df16/cs1 from the checkpoint and re-tried df19/cs1).
        let first = table2(&opts).expect("run 1 survives the panic");
        assert!(first.failures[0].panicked);
        let second = table2(&opts).expect("run 2 survives the panic");
        assert!(second.failures[0].panicked);

        // Run 3: two consecutive identical deaths put the cell in
        // quarantine — it is turned away without re-evaluating (the
        // panic hook would still fire if it ran).
        let third = table2(&opts).expect("run 3 skips the quarantined cell");
        assert_eq!(third.failures.len(), 1);
        let f = &third.failures[0];
        assert!(!f.panicked, "quarantined cell must not re-run: {f}");
        assert_eq!(f.attempts, 0);
        let s = f.error.to_string();
        assert!(s.contains("QUARANTINED") && s.contains("df19/cs1"), "{s}");
        assert_eq!(cell_at(&third, 19, 1).failed_points, 1);
        assert!(!third.coverage.is_complete());

        // The sidecar documents the deaths and is the lever to undo
        // the quarantine: delete it (after fixing the bug) and the
        // cell computes again.
        let sidecar = crate::campaign::Quarantine::sidecar_path(&path);
        assert!(
            sidecar.exists(),
            "sidecar must be written next to the checkpoint"
        );
        std::fs::remove_file(&sidecar).unwrap();
        opts.inject_panics = Vec::new();
        let healed = table2(&opts).expect("healed run recomputes the cell");
        assert!(healed.coverage.is_complete(), "{}", healed.coverage);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_disconnect_is_rejected_by_preflight() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        // Every grid point of (Df16, CS2) gets a severed netlist.
        opts.inject_disconnects = vec![(16, 2)];
        let table = table2(&opts).expect("campaign must survive a rejected point");

        let hurt = cell_at(&table, 16, 2);
        assert_eq!(hurt.failed_points, 1);
        assert_eq!(hurt.min_ohms, None);
        assert!(
            cell_at(&table, 16, 1).min_ohms.is_some(),
            "the untouched cell still characterizes"
        );
        assert_eq!(table.failures.len(), 1);
        let f = &table.failures[0];
        assert_eq!(f.attempts, 0, "no Newton iteration may be spent");
        match &f.error {
            anasim::Error::PreflightRejected { code, what } => {
                assert_eq!(code, "ERC001");
                assert!(
                    what.contains("injected_disconnect"),
                    "diagnostic must name the severed node: {what}"
                );
            }
            other => panic!("expected a pre-flight rejection, got {other}"),
        }
        assert!(!f.error.is_retryable(), "rescue ladder cannot help");
        // The gate's work shows up in the observability counters (and
        // therefore in every run manifest).
        let counters = obs::snapshot().counters;
        assert!(*counters.get("erc.preflight.checked").unwrap_or(&0) >= 1);
        assert!(*counters.get("erc.preflight.rejected").unwrap_or(&0) >= 1);
    }

    #[test]
    fn checkpoint_resume_skips_logged_cells() {
        let dir = std::env::temp_dir().join("drftest-table2-ckpt");
        let path = dir.join("table2.tsv");
        let _ = std::fs::remove_file(&path);
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16)];
        opts.case_studies = vec![CaseStudy::new(1, StoredBit::One)];
        opts.checkpoint = Some(path.clone());
        let first = table2(&opts).unwrap();
        let logged = Checkpoint::new(&path).rows_by_key().unwrap();
        assert!(logged.contains_key("df16/cs1"), "cell not checkpointed");

        // A rerun resumes from the file and reproduces the same cell
        // without recomputing (verified by the round-trip parse).
        let second = table2(&opts).unwrap();
        let a = cell_at(&first, 16, 1);
        let b = cell_at(&second, 16, 1);
        let (ra, rb) = (a.min_ohms.unwrap(), b.min_ohms.unwrap());
        // Bit-exact: checkpoint_fields serializes with shortest
        // round-trip precision, so resume introduces zero drift.
        assert_eq!(
            ra.to_bits(),
            rb.to_bits(),
            "resumed cell drifted: {ra} vs {rb}"
        );
        assert_eq!(
            a.vddcc.map(f64::to_bits),
            b.vddcc.map(f64::to_bits),
            "resumed vddcc drifted"
        );
        assert_eq!(a.pvt.map(|p| p.corner), b.pvt.map(|p| p.corner));
        assert_eq!(
            a.pvt.map(|p| (p.vdd.to_bits(), p.temp_c.to_bits())),
            b.pvt.map(|p| (p.vdd.to_bits(), p.temp_c.to_bits())),
            "resumed pvt drifted"
        );
        assert_eq!(a.failed_points, b.failed_points);
        assert!(second.coverage.is_complete());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Serializes a whole table through the full-precision checkpoint
    /// field format: two tables rendering to identical strings are
    /// bit-identical in every cell value.
    fn table_fingerprint(table: &Table2) -> String {
        let mut out = String::new();
        for row in &table.rows {
            for (cs, cell) in table.case_studies.iter().zip(&row.cells) {
                let key = cell_key(row.defect, cs.number);
                out.push_str(&checkpoint_fields(&key, cell).join("\t"));
                out.push('\n');
            }
        }
        out.push_str(&format!(
            "coverage {}/{} failures {}\n",
            table.coverage.completed,
            table.coverage.attempted,
            table.failures.len()
        ));
        out
    }

    #[test]
    fn table2_identical_across_jobs_and_parallel_resume() {
        let dir = std::env::temp_dir().join("drftest-table2-determinism");
        let path = dir.join("table2.tsv");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(18), Defect::new(19)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        // Exercise the failure path under parallelism too.
        opts.inject_failures = vec![(19, 2)];

        opts.jobs = 1;
        let sequential = table2(&opts).unwrap();
        opts.jobs = 4;
        let parallel = table2(&opts).unwrap();
        assert_eq!(
            table_fingerprint(&sequential),
            table_fingerprint(&parallel),
            "--jobs 4 must be byte-identical to --jobs 1"
        );

        // Resumed-from-checkpoint parallel run: a first (interrupted)
        // run logs only the Df16 cells; the rerun resumes them from
        // the file and computes the rest in parallel. The assembled
        // table must still match the uninterrupted sequential run.
        let mut partial = opts.clone();
        partial.defects = vec![Defect::new(16)];
        partial.checkpoint = Some(path.clone());
        partial.inject_failures = Vec::new();
        let _ = table2(&partial).unwrap();
        let mut resumed_opts = opts.clone();
        resumed_opts.checkpoint = Some(path.clone());
        let resumed = table2(&resumed_opts).unwrap();
        assert_eq!(
            table_fingerprint(&sequential),
            table_fingerprint(&resumed),
            "a parallel run resumed from a checkpoint must reproduce the table"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rank1_table2_is_deterministic_and_cuts_factorization_work() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(29)];
        opts.case_studies = vec![
            CaseStudy::new(1, StoredBit::One),
            CaseStudy::new(2, StoredBit::One),
        ];
        opts.jobs = 1;
        assert!(
            opts.characterize.rank1,
            "quick campaigns characterize with the fast path on"
        );

        // jobs == 1 runs inline on this thread, so the thread-local
        // solver tally isolates exactly this campaign's work even while
        // sibling tests solve on other threads.
        let t0 = obs::tally();
        let fast_seq = table2(&opts).unwrap();
        let work = obs::tally().since(&t0);
        assert!(fast_seq.coverage.is_complete(), "{}", fast_seq.coverage);
        assert!(work.chord_steps > 0, "chained probes never reused the LU");
        // Without the fast path every Newton iteration performs one LU
        // factorization, so the iteration count is the dense-equivalent
        // factorization work. The chained campaign must do >5x less.
        assert!(
            work.iterations > 5 * work.factorizations,
            "fast path factored too often: {} factorizations over {} iterations",
            work.factorizations,
            work.iterations
        );

        // Byte-identical output at any --jobs count with the fast path
        // on: per-cell chord chains live in per-cell scratches and the
        // factorization cache only returns bit-exact matches, so worker
        // scheduling must not leak into any cell.
        opts.jobs = 2;
        let fast_par = table2(&opts).unwrap();
        assert_eq!(
            table_fingerprint(&fast_seq),
            table_fingerprint(&fast_par),
            "--jobs 2 must be byte-identical to --jobs 1 with rank1 on"
        );

        // Against the dense path: minimum resistances are probe-grid
        // values selected by fault verdicts, so agreement is exact;
        // the diagnostic rail voltage agrees to solver tolerance.
        let mut dense_opts = opts.clone();
        dense_opts.jobs = 1;
        dense_opts.characterize.rank1 = false;
        let dense = table2(&dense_opts).unwrap();
        for (row_f, row_d) in fast_seq.rows.iter().zip(&dense.rows) {
            for (cell_f, cell_d) in row_f.cells.iter().zip(&row_d.cells) {
                assert_eq!(
                    cell_f.min_ohms,
                    cell_d.min_ohms,
                    "Df{} verdict grid drifted off the dense path",
                    row_f.defect.number()
                );
                assert_eq!(cell_f.pvt, cell_d.pvt);
                assert_eq!(cell_f.failed_points, cell_d.failed_points);
                if let (Some(a), Some(b)) = (cell_f.vddcc, cell_d.vddcc) {
                    assert!(
                        (a - b).abs() < 1.0e-4,
                        "Df{} rail voltage drifted: {a} vs {b}",
                        row_f.defect.number()
                    );
                }
            }
        }
    }

    #[test]
    fn table2_agrees_across_cold_warm_and_chained_seeding() {
        // Warm seeding (healthy-state, scratch reuse) and chained
        // bisection seeding are accelerators: every reported minimum
        // resistance must agree with the cold run to the bisection
        // bracket width.
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(16), Defect::new(29), Defect::new(18)];
        opts.case_studies = vec![CaseStudy::new(2, StoredBit::One)];
        opts.jobs = 1;

        let mut cold = opts.clone();
        cold.warm_start = false;
        cold.characterize.chain_seeds = false;
        let mut warm = opts.clone();
        warm.warm_start = true;
        warm.characterize.chain_seeds = false;
        let mut chained = opts.clone();
        chained.warm_start = true;
        chained.characterize.chain_seeds = true;

        let cold_t = table2(&cold).unwrap();
        let warm_t = table2(&warm).unwrap();
        let chained_t = table2(&chained).unwrap();

        // Final bracket width in log10-resistance: the coarse step
        // halved once per refinement, doubled as slack for a verdict
        // flipping exactly at a shared probe point.
        let c = &opts.characterize;
        let tol = 2.0 * (1.0 / c.points_per_decade as f64) / (1u64 << c.refine_iters) as f64;
        for (row_c, (row_w, row_ch)) in cold_t
            .rows
            .iter()
            .zip(warm_t.rows.iter().zip(&chained_t.rows))
        {
            for (cell_c, (cell_w, cell_ch)) in row_c
                .cells
                .iter()
                .zip(row_w.cells.iter().zip(&row_ch.cells))
            {
                for (variant, cell_v) in [("warm", cell_w), ("chained", cell_ch)] {
                    match (cell_c.min_ohms, cell_v.min_ohms) {
                        (None, None) => {}
                        (Some(a), Some(b)) => assert!(
                            (a.log10() - b.log10()).abs() <= tol,
                            "Df{} {variant} run drifted: cold {a} vs {b} (tol 10^{tol})",
                            row_c.defect.number()
                        ),
                        (a, b) => panic!(
                            "Df{} {variant} run changed the verdict: cold {a:?} vs {b:?}",
                            row_c.defect.number()
                        ),
                    }
                }
            }
        }
    }
}
