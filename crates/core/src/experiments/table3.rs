//! Table III regeneration: the optimized test flow, derived from a
//! measured coverage matrix and compared against the paper's three
//! iterations.

use std::fmt;

use crate::campaign::completeness_footer;
use crate::optimize::{
    build_coverage, escape_analysis, greedy_cover, CoverageMatrix, CoverageOptions,
};
use crate::report::{format_min_resistance, TextTable};
use crate::test_flow::TestFlow;

/// The rendered experiment.
#[derive(Debug, Clone)]
pub struct Table3Report {
    /// The measured coverage matrix.
    pub matrix: CoverageMatrix,
    /// The flow chosen by the greedy optimizer.
    pub optimized: TestFlow,
    /// The paper's published flow.
    pub paper: TestFlow,
    /// Whether the paper's flow covers the measured matrix.
    pub paper_flow_covers: bool,
    /// Time reduction of the optimized flow versus the exhaustive
    /// 12-combination flow.
    pub time_reduction: f64,
    /// Escape window (decades of defect resistance) the paper's flow
    /// gives up versus the exhaustive flow (0 = none).
    pub paper_flow_escape_decades: f64,
}

impl fmt::Display for Table3Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.optimized)?;
        writeln!(
            f,
            "time reduction vs exhaustive flow: {:.0}% (paper: 75%)",
            self.time_reduction * 100.0
        )?;
        writeln!(
            f,
            "paper's Table III flow covers the measured matrix: {}",
            self.paper_flow_covers
        )?;
        writeln!(
            f,
            "escape window of the paper's flow vs the exhaustive one: {:.2} decades",
            self.paper_flow_escape_decades
        )?;
        writeln!(f)?;
        writeln!(f, "coverage matrix (min failing resistance per combo):")?;
        let mut headers = vec!["Defect".to_string()];
        for combo in &self.matrix.combos {
            headers.push(format!("{:.1}V/{}", combo.vdd, combo.tap));
        }
        let mut t = TextTable::new(headers);
        for (d, defect) in self.matrix.defects.iter().enumerate() {
            let mut row = vec![defect.to_string()];
            for c in 0..self.matrix.combos.len() {
                let mut cell = format_min_resistance(self.matrix.min_r[d][c]);
                if self.matrix.maximized[d][c] {
                    cell.push('*');
                }
                row.push(cell);
            }
            t.push_row(row);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "(* = detection-maximizing combination for that defect)")?;
        if !self.matrix.coverage.is_complete() {
            writeln!(
                f,
                "{}",
                completeness_footer(&self.matrix.coverage, &self.matrix.failures)
            )?;
        }
        Ok(())
    }
}

/// Runs the Table III experiment: builds the coverage matrix, runs the
/// greedy optimizer, and checks the paper's flow against the measured
/// coverage.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(options: &CoverageOptions) -> Result<Table3Report, anasim::Error> {
    let matrix = build_coverage(options)?;
    let optimized = greedy_cover(&matrix, options.ds_time);
    let paper = TestFlow::paper_optimized(options.ds_time);
    let paper_indices: Vec<usize> = paper
        .iterations()
        .iter()
        .filter_map(|it| {
            matrix
                .combos
                .iter()
                .position(|c| (c.vdd - it.vdd).abs() < 1e-9 && c.tap == it.tap)
        })
        .collect();
    let paper_flow_covers = matrix.covers(&paper_indices);
    let exhaustive = TestFlow::exhaustive(options.ds_time);
    let time_reduction = optimized.time_reduction_vs(&exhaustive);
    let paper_flow_escape_decades = escape_analysis(&matrix, &paper).escape_decades();
    Ok(Table3Report {
        matrix,
        optimized,
        paper,
        paper_flow_covers,
        time_reduction,
        paper_flow_escape_decades,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table3_produces_small_flow() {
        let report = run(&CoverageOptions::quick()).unwrap();
        let n = report.optimized.iterations().len();
        assert!((1..=4).contains(&n), "optimized flow has {n} iterations");
        assert!(report.time_reduction >= 8.0 / 12.0 - 1e-9);
        let text = report.to_string();
        assert!(text.contains("time reduction"));
        assert!(text.contains("coverage matrix"));
    }
}
