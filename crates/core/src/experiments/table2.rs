//! Table II regeneration: minimum defect resistances causing DRF_DS,
//! side by side with the paper's published values.

use std::fmt;

use regulator::Defect;

use crate::campaign::completeness_footer;
use crate::defect_analysis::{table2 as campaign, Table2, Table2Options};
use crate::report::{format_min_resistance, TextTable};

/// The paper's published minimum resistances (Table II), ohms, per
/// defect for columns CS1, CS2, CS3, CS4, CS5; `None` is the paper's
/// `> 500M`.
pub fn paper_min_resistance(defect: Defect, cs_number: u8) -> Option<f64> {
    const K: f64 = 1.0e3;
    const M: f64 = 1.0e6;
    let row: [Option<f64>; 5] = match defect.number() {
        1 => [
            Some(9.76 * K),
            Some(97.65 * K),
            Some(390.62 * K),
            Some(10.25 * M),
            Some(91.79 * K),
        ],
        2 => [
            Some(9.76 * K),
            Some(97.65 * K),
            Some(390.62 * K),
            Some(10.25 * M),
            Some(91.79 * K),
        ],
        3 => [
            Some(19.53 * K),
            Some(195.31 * K),
            Some(488.28 * K),
            Some(33.20 * M),
            Some(191.40 * K),
        ],
        4 => [
            Some(19.53 * K),
            Some(195.31 * K),
            Some(488.28 * K),
            Some(33.20 * M),
            Some(190.31 * K),
        ],
        5 => [
            Some(2.36 * M),
            Some(3.26 * M),
            Some(3.41 * M),
            Some(97.65 * M),
            Some(2.48 * M),
        ],
        7 => [
            Some(976.56 * K),
            Some(3.90 * M),
            Some(33.20 * M),
            None,
            Some(2.21 * M),
        ],
        8 => [
            Some(29.78 * M),
            Some(257.81 * M),
            None,
            None,
            Some(153.51 * M),
        ],
        9 => [
            Some(976.56 * K),
            Some(7.81 * M),
            Some(50.78 * M),
            None,
            Some(4.64 * M),
        ],
        10 => [
            Some(2.92 * K),
            Some(78.12 * K),
            Some(253.90 * K),
            Some(6.83 * M),
            Some(61.52 * K),
        ],
        11 => [Some(3.90 * K), Some(59.57 * M), None, None, Some(39.23 * M)],
        12 => [
            Some(45.99 * K),
            Some(58.59 * K),
            Some(839.84 * K),
            None,
            Some(49.01 * K),
        ],
        16 => [
            Some(976.56),
            Some(19.53 * K),
            Some(19.53 * K),
            None,
            Some(2.92 * K),
        ],
        19 => [
            Some(195.31),
            Some(19.53 * K),
            Some(19.53 * K),
            None,
            Some(1.02 * K),
        ],
        23 => [
            Some(121.09 * K),
            Some(859.37 * K),
            Some(3.20 * M),
            Some(62.01 * M),
            Some(850.28 * K),
        ],
        26 => [
            Some(3.41 * K),
            Some(97.65 * K),
            Some(1.21 * M),
            Some(65.91 * M),
            Some(86.36 * K),
        ],
        29 => [
            Some(488.28),
            Some(19.53 * K),
            Some(19.53 * K),
            None,
            Some(1.17 * K),
        ],
        32 => [
            Some(4.88 * K),
            Some(21.68 * K),
            Some(26.90 * K),
            None,
            Some(15.43 * K),
        ],
        _ => return None,
    };
    if (1..=5).contains(&cs_number) {
        row[cs_number as usize - 1]
    } else {
        None
    }
}

/// The rendered experiment.
#[derive(Debug, Clone)]
pub struct Table2Report {
    /// The measured campaign.
    pub table: Table2,
}

impl Table2Report {
    /// Shape checks the paper calls out: CS1 needs the smallest
    /// resistance, CS4 the largest (or none), CS5 below CS2; Df16, Df19
    /// and Df29 are the most critical amplifier defects.
    pub fn shape_holds(&self) -> ShapeChecks {
        let mut ordering_ok = true;
        let mut cs5_below_cs2 = true;
        for row in &self.table.rows {
            let at = |n: u8| self.table.cell(row.defect, n).and_then(|c| c.min_ohms);
            if let (Some(c1), Some(c2)) = (at(1), at(2)) {
                ordering_ok &= c1 <= c2;
            }
            if let (Some(c2), Some(c3)) = (at(2), at(3)) {
                ordering_ok &= c2 <= c3 * 1.05;
            }
            if let (Some(c2), Some(c5)) = (at(2), at(5)) {
                cs5_below_cs2 &= c5 <= c2 * 1.05;
            }
        }
        // Most-critical check among the error-amplifier defects at CS1.
        let amp_defects: Vec<(Defect, f64)> = self
            .table
            .rows
            .iter()
            .filter(|r| !r.defect.in_voltage_source())
            .filter_map(|r| {
                self.table
                    .cell(r.defect, 1)
                    .and_then(|c| c.min_ohms)
                    .map(|o| (r.defect, o))
            })
            .collect();
        let critical_set = [Defect::new(16), Defect::new(19), Defect::new(29)];
        let mut sorted = amp_defects.clone();
        sorted.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let most_critical_match = sorted
            .iter()
            .take(3)
            .filter(|(d, _)| critical_set.contains(d))
            .count();
        ShapeChecks {
            cs_ordering: ordering_ok,
            cs5_below_cs2,
            critical_defects_in_top3: most_critical_match,
        }
    }
}

/// Outcome of the qualitative shape checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShapeChecks {
    /// CS1 ≤ CS2 ≤ CS3 for every defect with data.
    pub cs_ordering: bool,
    /// CS5 ≤ CS2 (extra load from 64 stressed cells).
    pub cs5_below_cs2: bool,
    /// How many of {Df16, Df19, Df29} are among the three smallest
    /// CS1 min-resistances of the amplifier defects (paper: all three).
    pub critical_defects_in_top3: usize,
}

impl fmt::Display for Table2Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut headers = vec!["Defect".to_string()];
        for cs in &self.table.case_studies {
            headers.push(format!("CS{} meas.", cs.number));
            headers.push(format!("CS{} paper", cs.number));
        }
        headers.push("worst PVT (meas.)".to_string());
        let mut t = TextTable::new(headers);
        for row in &self.table.rows {
            let mut cells = vec![row.defect.to_string()];
            let mut worst = String::new();
            for (cs, cell) in self.table.case_studies.iter().zip(&row.cells) {
                cells.push(format_min_resistance(cell.min_ohms));
                cells.push(format_min_resistance(paper_min_resistance(
                    row.defect, cs.number,
                )));
                if let Some(pvt) = cell.pvt {
                    if worst.is_empty() {
                        worst = pvt.to_string();
                    }
                }
            }
            cells.push(worst);
            t.push_row(cells);
        }
        write!(f, "{t}")?;
        if !self.table.coverage.is_complete() {
            write!(
                f,
                "\n{}",
                completeness_footer(&self.table.coverage, &self.table.failures)
            )?;
        }
        Ok(())
    }
}

/// Runs the Table II experiment.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(options: &Table2Options) -> Result<Table2Report, anasim::Error> {
    Ok(Table2Report {
        table: campaign(options)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::case_study::CaseStudy;
    use sram::StoredBit;

    #[test]
    fn paper_reference_values() {
        assert_eq!(paper_min_resistance(Defect::new(16), 1), Some(976.56));
        assert_eq!(paper_min_resistance(Defect::new(8), 3), None);
        assert_eq!(paper_min_resistance(Defect::new(5), 4), Some(97.65e6));
        // Non-table defects have no reference.
        assert_eq!(paper_min_resistance(Defect::new(18), 1), None);
    }

    #[test]
    fn quick_report_renders_with_paper_columns() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(19)];
        opts.case_studies = vec![CaseStudy::new(1, StoredBit::One)];
        let report = run(&opts).unwrap();
        let text = report.to_string();
        assert!(text.contains("Df19"));
        assert!(text.contains("CS1 paper"));
        assert!(text.contains("195.31"), "paper value shown: {text}");
        assert!(
            !text.contains("coverage:"),
            "complete runs render no footer: {text}"
        );
    }

    #[test]
    fn partial_report_renders_coverage_footer() {
        let mut opts = Table2Options::quick();
        opts.defects = vec![Defect::new(19)];
        opts.case_studies = vec![CaseStudy::new(1, StoredBit::One)];
        opts.inject_failures = vec![(19, 1)];
        let report = run(&opts).unwrap();
        let text = report.to_string();
        assert!(text.contains("coverage: 0/1"), "{text}");
        assert!(text.contains("unresolved: Df19 × CS1"), "{text}");
    }
}
