//! Full-array retention map: solves the row×col core-cell array
//! electrically through the hierarchical block-Schur reduction and
//! grades every cell's verdict.
//!
//! Each grid point — a (scenario, supply) pair — is one full-array
//! Newton solve, fanned across workers through
//! [`parallel_map_ordered`]. Per the executor's determinism contract
//! the rendered report is byte-identical for every `--jobs` value:
//! every number in a row comes from that point's own solve and its own
//! [`SolveScratch`] counters, folded in grid order.

use std::fmt;

use anasim::{solve_array, ArraySolveOptions, SolveScratch};
use process::PvtCondition;
use sram::{ActiveCell, ArraySpec, CellInstance, StoredBit};

use crate::executor::parallel_map_ordered;
use crate::report::TextTable;

/// One injected-defect scenario: a label plus the cells that differ
/// from the healthy background.
#[derive(Debug, Clone)]
pub struct ArrayScenario {
    /// Report label, e.g. `clean` or `3 bridges`.
    pub name: String,
    /// Defective / overridden cells.
    pub active: Vec<ActiveCell>,
}

impl ArrayScenario {
    /// A defect-free array.
    pub fn clean() -> Self {
        ArrayScenario {
            name: "clean".to_string(),
            active: Vec::new(),
        }
    }

    /// `count` bridged cells (1 kΩ S–SB shorts) at fixed distinct
    /// sites — hard defects that collapse the cell at low supply.
    pub fn bridges(count: usize) -> Self {
        const SITES: [(usize, usize); 3] = [(1, 2), (7, 5), (12, 0)];
        ArrayScenario {
            name: format!("{count} bridge{}", if count == 1 { "" } else { "s" }),
            active: SITES[..count]
                .iter()
                .map(|&(r, c)| ActiveCell::bridged(r, c, StoredBit::One, 1.0e3))
                .collect(),
        }
    }
}

/// Options for the full-array retention experiment.
#[derive(Debug, Clone)]
pub struct ArrayRetentionOptions {
    /// Word lines.
    pub rows: usize,
    /// Bit-line pairs.
    pub cols: usize,
    /// Supplies to solve at, volts.
    pub supplies: Vec<f64>,
    /// Defect scenarios; the grid is scenarios × supplies.
    pub scenarios: Vec<ArrayScenario>,
    /// Solver path selection (Schur reduction on by default).
    pub solve: ArraySolveOptions,
    /// Worker threads (`0` = available parallelism, `1` = sequential);
    /// the report is byte-identical for every value.
    pub jobs: usize,
}

impl ArrayRetentionOptions {
    /// The paper-scale 512×8 column stripe.
    pub fn paper() -> Self {
        ArrayRetentionOptions {
            rows: 512,
            cols: 8,
            supplies: vec![1.1, 0.5],
            scenarios: vec![
                ArrayScenario::clean(),
                ArrayScenario::bridges(1),
                ArrayScenario::bridges(3),
            ],
            solve: ArraySolveOptions::default(),
            jobs: 0,
        }
    }

    /// Fast 64×8 configuration for smokes and CI.
    pub fn quick() -> Self {
        ArrayRetentionOptions {
            rows: 64,
            ..Self::paper()
        }
    }
}

/// One solved grid point.
#[derive(Debug, Clone)]
pub struct ArrayRetentionRow {
    /// Scenario label.
    pub scenario: String,
    /// Supply, volts.
    pub supply: f64,
    /// Total MNA unknowns of the array system.
    pub unknowns: usize,
    /// Unknowns in the reduced interface system (equals `unknowns`
    /// when the monolithic fallback ran).
    pub interface_unknowns: usize,
    /// Cells still holding their bit.
    pub retained: usize,
    /// Cells in the array.
    pub cells: usize,
    /// Row-major positions of the cells that lost their data.
    pub flipped: Vec<(usize, usize)>,
    /// Lumped-rail droop below the supply, volts.
    pub rail_droop: f64,
    /// Schur macromodels served from the content-addressed cache.
    pub blocks_shared: u64,
    /// Schur macromodels factored fresh.
    pub blocks_rebuilt: u64,
}

/// The full retention map.
#[derive(Debug, Clone)]
pub struct ArrayRetentionReport {
    /// Geometry echo.
    pub rows: usize,
    /// Geometry echo.
    pub cols: usize,
    /// One row per (scenario, supply) grid point, in grid order.
    pub points: Vec<ArrayRetentionRow>,
}

impl fmt::Display for ArrayRetentionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}x{} array retention map ({} cells per solve)",
            self.rows,
            self.cols,
            self.rows * self.cols
        )?;
        let mut t = TextTable::new([
            "scenario",
            "supply (V)",
            "unknowns",
            "interface",
            "retained",
            "flipped cells",
            "rail droop (V)",
            "macromodels hit/built",
        ]);
        for p in &self.points {
            let flipped = if p.flipped.is_empty() {
                "-".to_string()
            } else {
                p.flipped
                    .iter()
                    .map(|(r, c)| format!("({r},{c})"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            t.push_row([
                p.scenario.clone(),
                format!("{:.3}", p.supply),
                p.unknowns.to_string(),
                p.interface_unknowns.to_string(),
                format!("{}/{}", p.retained, p.cells),
                flipped,
                format!("{:.3e}", p.rail_droop),
                format!("{}/{}", p.blocks_shared, p.blocks_rebuilt),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the full-array retention experiment.
///
/// # Errors
///
/// Propagates netlist-construction and solver failures; the first
/// failing grid point (in grid order) aborts the run.
pub fn run(options: &ArrayRetentionOptions) -> Result<ArrayRetentionReport, anasim::Error> {
    let _span = obs::span("array");
    let base = CellInstance::symmetric(PvtCondition::nominal());
    let mut points = Vec::new();
    for scenario in &options.scenarios {
        for &supply in &options.supplies {
            points.push((scenario.clone(), supply));
        }
    }
    let solved = parallel_map_ordered(
        options.jobs,
        &points,
        |_, (scenario, supply)| -> Result<ArrayRetentionRow, anasim::Error> {
            let mut spec = ArraySpec::retention(options.rows, options.cols, *supply, base);
            spec.active = scenario.active.clone();
            let built = spec.build()?;
            // A fresh scratch per point: the counters below are this
            // solve's alone, and workers share no mutable state.
            let mut scratch = SolveScratch::new();
            let sol = solve_array(
                &built.netlist,
                &built.partition,
                &options.solve,
                Some(&built.guess()),
                &mut scratch,
            )?;
            let grid = built.retained(&sol);
            let flipped: Vec<(usize, usize)> = grid
                .iter()
                .enumerate()
                .filter(|(_, &ok)| !ok)
                .map(|(i, _)| (i / options.cols, i % options.cols))
                .collect();
            let counters = scratch.counters();
            let row = ArrayRetentionRow {
                scenario: scenario.name.clone(),
                supply: *supply,
                unknowns: built.netlist.num_unknowns(),
                interface_unknowns: scratch
                    .schur_interface_unknowns()
                    .unwrap_or_else(|| built.netlist.num_unknowns()),
                retained: grid.iter().filter(|&&ok| ok).count(),
                cells: grid.len(),
                flipped,
                rail_droop: *supply - sol.voltage(built.vdd_rail),
                blocks_shared: counters.schur_blocks_shared,
                blocks_rebuilt: counters.schur_blocks_rebuilt,
            };
            scratch.flush_obs_counters();
            Ok(row)
        },
        |_, _| {},
    );
    let mut report_points = Vec::with_capacity(solved.len());
    for point in solved {
        report_points.push(point?);
    }
    Ok(ArrayRetentionReport {
        rows: options.rows,
        cols: options.cols,
        points: report_points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ArrayRetentionOptions {
        ArrayRetentionOptions {
            rows: 16,
            cols: 8,
            supplies: vec![0.5],
            scenarios: vec![
                ArrayScenario::clean(),
                ArrayScenario::bridges(1),
                ArrayScenario::bridges(3),
            ],
            solve: ArraySolveOptions::default(),
            jobs: 1,
        }
    }

    #[test]
    fn retention_map_counts_exactly_the_injected_defects() {
        let report = run(&tiny()).expect("tiny map solves");
        assert_eq!(report.points.len(), 3);
        for (point, expected) in report.points.iter().zip([0usize, 1, 3]) {
            assert_eq!(point.cells - point.retained, expected, "{}", point.scenario);
            assert_eq!(point.flipped.len(), expected);
            // The reduced path ran: the interface is far smaller than
            // the system, and macromodels were shared across blocks.
            assert!(point.interface_unknowns * 5 < point.unknowns);
            assert!(point.blocks_shared > point.blocks_rebuilt);
        }
        let text = report.to_string();
        assert!(text.contains("16x8 array retention map"));
        assert!(text.contains("(1,2)"), "flipped cells listed:\n{text}");
    }

    #[test]
    fn report_is_byte_identical_across_job_counts() {
        let sequential = run(&tiny()).expect("jobs=1 solves");
        let parallel = run(&ArrayRetentionOptions { jobs: 2, ..tiny() }).expect("jobs=2 solves");
        assert_eq!(
            sequential.to_string(),
            parallel.to_string(),
            "the retention map must not depend on --jobs"
        );
    }
}
