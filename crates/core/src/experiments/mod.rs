//! Experiment drivers regenerating every table and figure of the
//! paper's evaluation, each returning a displayable report that pairs
//! measured values with the published ones.

pub mod array;
pub mod fig4;
pub mod table1;
pub mod table2;
pub mod table3;
