//! Table I regeneration: worst-case deep-sleep retention voltages of
//! the five case studies.

use std::fmt;

use process::{ProcessCorner, PvtCondition};
use sram::drv::{drv_ds, DrvOptions};
use sram::{CellInstance, StoredBit};

use crate::campaign::{completeness_footer, publish_coverage, Coverage, PointFailure, PointTimer};
use crate::case_study::CaseStudy;
use crate::executor::parallel_map_isolated;
use crate::report::{format_mv, TextTable};

/// Options for the Table I experiment.
#[derive(Debug, Clone)]
pub struct Table1Options {
    /// Corners in the max.
    pub corners: Vec<ProcessCorner>,
    /// Temperatures in the max, °C.
    pub temperatures: Vec<f64>,
    /// Supply bound, volts.
    pub vdd: f64,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Worker threads the (case-study × corner × temp) grid fans
    /// across (`0` = available parallelism, `1` = sequential); the
    /// report is byte-identical for every value.
    pub jobs: usize,
}

impl Table1Options {
    /// The paper's grid.
    pub fn paper() -> Self {
        Table1Options {
            corners: ProcessCorner::ALL.to_vec(),
            temperatures: vec![-30.0, 25.0, 125.0],
            vdd: 1.1,
            drv: DrvOptions::default(),
            jobs: 0,
        }
    }

    /// Fast configuration for tests: the dominant worst-case corners
    /// only.
    pub fn quick() -> Self {
        Table1Options {
            corners: vec![ProcessCorner::FastNSlowP, ProcessCorner::SlowNFastP],
            temperatures: vec![125.0],
            drv: DrvOptions::coarse(),
            ..Self::paper()
        }
    }
}

/// One measured row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// The case study (a `-1` variant; `-0` rows are mirrors).
    pub case_study: CaseStudy,
    /// Measured worst-case `DRV_DS1`, volts.
    pub drv_ds1: f64,
    /// Measured worst-case `DRV_DS0`, volts.
    pub drv_ds0: f64,
    /// The grid point maximizing `DRV_DS1`.
    pub worst_pvt: PvtCondition,
    /// The paper's value for `DRV_DS`, volts.
    pub paper_drv: f64,
}

impl Table1Row {
    /// `DRV_DS = max(DRV_DS1, DRV_DS0)`.
    pub fn drv_ds(&self) -> f64 {
        self.drv_ds1.max(self.drv_ds0)
    }
}

/// The regenerated table, possibly partial: grid points unsolved after
/// the rescue ladder are listed in `failures` and excluded from the
/// per-row maxima.
#[derive(Debug, Clone)]
pub struct Table1Report {
    /// Rows for CS1…CS5 (`-1` variants).
    pub rows: Vec<Table1Row>,
    /// Grid points left unsolved this run.
    pub failures: Vec<PointFailure>,
    /// Attempted/completed accounting over the (CS × corner × temp)
    /// grid.
    pub coverage: Coverage,
}

impl Table1Report {
    /// Paper-shape checks: the DRV ordering CS1 > CS2 = CS5 > CS3 >
    /// CS4, and DRV set by the stressed lobe.
    pub fn ordering_holds(&self) -> bool {
        let by_number = |n: u8| {
            self.rows
                .iter()
                .find(|r| r.case_study.number == n)
                .map(|r| r.drv_ds())
        };
        match (by_number(1), by_number(2), by_number(3), by_number(4)) {
            (Some(c1), Some(c2), Some(c3), Some(c4)) => c1 > c2 && c2 > c3 && c3 > c4,
            _ => true, // partial runs can't check
        }
    }
}

impl fmt::Display for Table1Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut t = TextTable::new([
            "Case study",
            "#cells",
            "DRV_DS0 (mV)",
            "DRV_DS1 (mV)",
            "DRV_DS (mV)",
            "paper (mV)",
            "worst PVT",
        ]);
        for row in &self.rows {
            t.push_row([
                row.case_study.to_string(),
                row.case_study.cell_count().to_string(),
                format_mv(row.drv_ds0),
                format_mv(row.drv_ds1),
                format_mv(row.drv_ds()),
                format_mv(row.paper_drv),
                row.worst_pvt.to_string(),
            ]);
        }
        write!(f, "{t}")?;
        if !self.coverage.is_complete() {
            write!(
                f,
                "\n{}",
                completeness_footer(&self.coverage, &self.failures)
            )?;
        }
        Ok(())
    }
}

/// Runs the Table I experiment over the five `-1` case studies.
///
/// Each grid point runs in isolation: points unsolved after the rescue
/// ladder are recorded in the report's `failures`/`coverage` and left
/// out of the maxima rather than aborting the run.
///
/// # Errors
///
/// Propagates non-retryable failures (invalid setups).
pub fn run(options: &Table1Options) -> Result<Table1Report, anasim::Error> {
    let _span = obs::span("table1");
    let run_start = std::time::Instant::now();
    // Flatten the (cs × corner × temp) grid so every point is one
    // independently stealable work item; the per-row maxima fold below
    // walks the results in grid order, so first-wins tie-breaking (and
    // hence `worst_pvt`) is identical for any job count.
    let cases = CaseStudy::ones();
    let mut points: Vec<(CaseStudy, PvtCondition)> = Vec::new();
    for &cs in &cases {
        for &corner in &options.corners {
            for &temp in &options.temperatures {
                points.push((cs, PvtCondition::new(corner, options.vdd, temp)));
            }
        }
    }
    let solved = parallel_map_isolated(
        options.jobs,
        &points,
        |_, &(cs, pvt)| {
            let inst = CellInstance::with_pattern(cs.pattern(), pvt);
            let timer = PointTimer::start(format!("cs{} @ {pvt}", cs.number));
            let point = drv_ds(&inst, StoredBit::One, &options.drv)
                .and_then(|d1| Ok((d1.drv, drv_ds(&inst, StoredBit::Zero, &options.drv)?.drv)));
            if !matches!(&point, Err(e) if !e.is_retryable()) {
                timer.finish();
            }
            point
        },
        |_, _| {},
    );
    // A worker that panicked on a point surfaces as a recordable
    // per-point error, exactly like a solver failure.
    let solved: Vec<_> = solved
        .into_iter()
        .map(|o| o.unwrap_or_else(|what| Err(anasim::Error::Panicked { what })))
        .collect();

    let per_row = options.corners.len() * options.temperatures.len();
    let mut rows = Vec::new();
    let mut failures = Vec::new();
    let mut coverage = Coverage::default();
    let mut results = points.iter().zip(solved);
    for &cs in &cases {
        let mut best1 = (0.0f64, PvtCondition::nominal());
        let mut best0 = 0.0f64;
        for _ in 0..per_row {
            let (&(_, pvt), point) = results
                .next()
                .expect("the executor returns one result per grid point");
            match point {
                Ok((d1, d0)) => {
                    coverage.record_ok();
                    if d1 > best1.0 {
                        best1 = (d1, pvt);
                    }
                    best0 = best0.max(d0);
                }
                Err(e) if e.is_recordable() => {
                    coverage.record_failure();
                    let attempts = if e.is_retryable() {
                        options.drv.retry.max_attempts
                    } else {
                        0
                    };
                    failures.push(PointFailure::new(
                        None,
                        Some(cs.number),
                        Some(pvt),
                        e,
                        attempts,
                    ));
                }
                Err(e) => return Err(e),
            }
        }
        obs::progress(&format!("table1 row CS{} done ({coverage})", cs.number));
        rows.push(Table1Row {
            case_study: cs,
            drv_ds1: best1.0,
            drv_ds0: best0,
            worst_pvt: best1.1,
            paper_drv: cs.paper_drv_mv() / 1.0e3,
        });
    }
    coverage.elapsed_s = run_start.elapsed().as_secs_f64();
    publish_coverage(&coverage);
    Ok(Table1Report {
        rows,
        failures,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_table1_reproduces_shape() {
        let report = run(&Table1Options::quick()).unwrap();
        assert_eq!(report.rows.len(), 5);
        assert!(report.ordering_holds(), "{report}");
        assert!(
            report.coverage.is_complete() && report.failures.is_empty(),
            "healthy quick run must be complete: {}",
            report.coverage
        );
        // 5 CS × 2 corners × 1 temp.
        assert_eq!(report.coverage.attempted, 10);
        // CSx-1 rows: the stressed lobe (DS1) sets the DRV; the other
        // lobe stays near the symmetric floor.
        for row in &report.rows {
            if row.case_study.number != 4 {
                assert!(
                    row.drv_ds1 > row.drv_ds0,
                    "{}: {} vs {}",
                    row.case_study,
                    row.drv_ds1,
                    row.drv_ds0
                );
            }
        }
        // CS1 lands near the paper's 730 mV (calibrated).
        let cs1 = &report.rows[0];
        assert!(
            (0.65..0.78).contains(&cs1.drv_ds()),
            "CS1 DRV {} V",
            cs1.drv_ds()
        );
        // Render.
        let text = report.to_string();
        assert!(text.contains("CS1-1"));
        assert!(text.contains("worst PVT"));
    }
}
