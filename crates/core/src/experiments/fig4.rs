//! Fig. 4 regeneration: DRV versus single-transistor Vth variation,
//! rendered as the two panels (a: DRV_DS1, b: DRV_DS0).

use std::fmt;

use sram::CellTransistor;

use crate::campaign::completeness_footer;
use crate::drv_analysis::{fig4 as sweep, Fig4Data, Fig4Options};
use crate::report::{format_mv, TextTable};

/// The rendered experiment.
#[derive(Debug, Clone)]
pub struct Fig4Report {
    /// The measured sweep.
    pub data: Fig4Data,
    /// σ grid used.
    pub sigmas: Vec<f64>,
}

impl Fig4Report {
    fn panel(
        &self,
        f: &mut fmt::Formatter<'_>,
        title: &str,
        pick: fn(&crate::drv_analysis::Fig4Point) -> f64,
    ) -> fmt::Result {
        writeln!(f, "{title}")?;
        let mut headers = vec!["transistor".to_string()];
        headers.extend(self.sigmas.iter().map(|s| format!("{s:+}σ")));
        let mut t = TextTable::new(headers);
        for transistor in CellTransistor::ALL {
            let series = self.data.of(transistor);
            let mut row = vec![transistor.to_string()];
            row.extend(series.points.iter().map(|p| format_mv(pick(p))));
            t.push_row(row);
        }
        writeln!(f, "{t}")
    }
}

impl fmt::Display for Fig4Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.panel(
            f,
            "Fig. 4a — worst-case DRV_DS1 (mV) vs Vth variation",
            |p| p.drv_ds1,
        )?;
        self.panel(
            f,
            "Fig. 4b — worst-case DRV_DS0 (mV) vs Vth variation",
            |p| p.drv_ds0,
        )?;
        if !self.data.coverage.is_complete() {
            writeln!(
                f,
                "{}",
                completeness_footer(&self.data.coverage, &self.data.failures)
            )?;
        }
        Ok(())
    }
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates solver failures.
pub fn run(options: &Fig4Options) -> Result<Fig4Report, anasim::Error> {
    let data = sweep(options)?;
    Ok(Fig4Report {
        sigmas: options.sigmas.clone(),
        data,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_both_panels() {
        let report = run(&Fig4Options::quick()).unwrap();
        let text = report.to_string();
        assert!(text.contains("Fig. 4a"));
        assert!(text.contains("Fig. 4b"));
        assert!(text.contains("MPcc1"));
        assert!(text.contains("MNcc4"));
        assert!(report.data.observation1_holds());
    }
}
