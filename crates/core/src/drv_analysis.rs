//! Fig. 4 analysis: impact of single-transistor Vth variation on the
//! deep-sleep retention voltages.
//!
//! For each of the six cell transistors, a σ sweep is applied to that
//! transistor alone and `DRV_DS1`/`DRV_DS0` are measured; each point
//! reports the maximum over the requested (corner, temperature) grid,
//! as in the paper ("data shown correspond to the combination … that
//! maximizes DRV").

use process::{ProcessCorner, PvtCondition, Sigma};
use sram::cell::build_retention_netlist;
use sram::drv::{drv_ds, DrvOptions, StoredBit};
use sram::{CellInstance, CellTransistor, MismatchPattern};

use crate::campaign::{preflight_netlist, publish_coverage, Coverage, PointFailure, PointTimer};
use crate::executor::parallel_map_isolated;

/// Options for the Fig. 4 sweep.
#[derive(Debug, Clone)]
pub struct Fig4Options {
    /// σ values applied to the swept transistor.
    pub sigmas: Vec<f64>,
    /// Corners included in the max.
    pub corners: Vec<ProcessCorner>,
    /// Temperatures included in the max, °C.
    pub temperatures: Vec<f64>,
    /// Supply bound for the DRV search, volts.
    pub vdd: f64,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Worker threads the (transistor × σ × corner × temp) grid fans
    /// across (`0` = available parallelism, `1` = sequential); the
    /// dataset is identical for every value.
    pub jobs: usize,
}

impl Fig4Options {
    /// The paper's configuration: ±6σ range, all corners, all
    /// temperatures.
    pub fn paper() -> Self {
        Fig4Options {
            sigmas: vec![-6.0, -4.0, -2.0, 0.0, 2.0, 4.0, 6.0],
            corners: ProcessCorner::ALL.to_vec(),
            temperatures: vec![-30.0, 25.0, 125.0],
            vdd: 1.1,
            drv: DrvOptions::default(),
            jobs: 0,
        }
    }

    /// A fast configuration for tests (includes the hot point so the
    /// worst-case maxima are representative).
    pub fn quick() -> Self {
        Fig4Options {
            sigmas: vec![-6.0, 0.0, 6.0],
            corners: vec![ProcessCorner::Typical],
            temperatures: vec![25.0, 125.0],
            vdd: 1.1,
            drv: DrvOptions::coarse(),
            jobs: 0,
        }
    }
}

/// One sweep point of one transistor's series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig4Point {
    /// The σ applied to the swept transistor.
    pub sigma: f64,
    /// Worst-case `DRV_DS1` over the grid, volts.
    pub drv_ds1: f64,
    /// Worst-case `DRV_DS0` over the grid, volts.
    pub drv_ds0: f64,
    /// The grid point maximizing `DRV_DS1`.
    pub worst_pvt_ds1: PvtCondition,
    /// The grid point maximizing `DRV_DS0`.
    pub worst_pvt_ds0: PvtCondition,
}

/// The sweep of one transistor.
#[derive(Debug, Clone)]
pub struct Fig4Series {
    /// The swept transistor.
    pub transistor: CellTransistor,
    /// Points in the order of `options.sigmas`.
    pub points: Vec<Fig4Point>,
}

impl Fig4Series {
    /// The point at the given σ, if it was swept.
    pub fn at_sigma(&self, sigma: f64) -> Option<&Fig4Point> {
        self.points.iter().find(|p| p.sigma == sigma)
    }
}

/// The complete Fig. 4 dataset: six series, possibly partial (see
/// `failures`/`coverage` — unsolved grid points are excluded from the
/// per-point maxima rather than aborting the sweep).
#[derive(Debug, Clone)]
pub struct Fig4Data {
    /// One series per cell transistor, in Fig. 3 order.
    pub series: Vec<Fig4Series>,
    /// Grid points left unsolved this run.
    pub failures: Vec<PointFailure>,
    /// Attempted/completed accounting over the (transistor × σ ×
    /// corner × temp) grid.
    pub coverage: Coverage,
}

impl Fig4Data {
    /// The series of one transistor.
    pub fn of(&self, transistor: CellTransistor) -> &Fig4Series {
        self.series
            .iter()
            .find(|s| s.transistor == transistor)
            .expect("all six transistors are swept")
    }

    /// The paper's observation 1: negative variation on the inverter
    /// driving '1' (MPcc1/MNcc1) raises `DRV_DS1` above the positive
    /// side.
    pub fn observation1_holds(&self) -> bool {
        [CellTransistor::MPcc1, CellTransistor::MNcc1]
            .iter()
            .all(|&t| {
                let s = self.of(t);
                let (lo, hi) = (
                    s.points.first().expect("sweeps are non-empty"),
                    s.points.last().expect("sweeps are non-empty"),
                );
                debug_assert!(lo.sigma < hi.sigma);
                lo.drv_ds1 > hi.drv_ds1
            })
    }

    /// The paper's observation 2 (mirror of observation 1): positive
    /// variation on MPcc1/MNcc1 raises `DRV_DS0`.
    pub fn observation2_holds(&self) -> bool {
        [CellTransistor::MPcc1, CellTransistor::MNcc1]
            .iter()
            .all(|&t| {
                let s = self.of(t);
                let (lo, hi) = (
                    s.points.first().expect("sweeps are non-empty"),
                    s.points.last().expect("sweeps are non-empty"),
                );
                hi.drv_ds0 > lo.drv_ds0
            })
    }

    /// The paper's remark that pass-transistor variation matters less
    /// than inverter variation (but is not negligible): the DRV spread
    /// of MNcc3's sweep is smaller than MNcc1's.
    pub fn pass_transistors_matter_less(&self) -> bool {
        let spread = |t: CellTransistor, pick: fn(&Fig4Point) -> f64| {
            let s = self.of(t);
            let max = s.points.iter().map(&pick).fold(f64::MIN, f64::max);
            let min = s.points.iter().map(&pick).fold(f64::MAX, f64::min);
            max - min
        };
        spread(CellTransistor::MNcc3, |p| p.drv_ds1) < spread(CellTransistor::MNcc1, |p| p.drv_ds1)
    }
}

/// Runs the Fig. 4 sweep with per-grid-point fault isolation: a point
/// the rescue ladder cannot solve is recorded in the returned
/// `failures`/`coverage` and left out of the maxima.
///
/// # Errors
///
/// Propagates non-retryable failures (invalid setups).
pub fn fig4(options: &Fig4Options) -> Result<Fig4Data, anasim::Error> {
    let _span = obs::span("fig4");
    let sweep_start = std::time::Instant::now();
    // Flatten the four-level (transistor × σ × corner × temp) grid;
    // the per-(transistor, σ) maxima fold below walks results in grid
    // order, so first-wins tie-breaking is identical for any job count.
    let mut grid: Vec<(CellTransistor, f64, PvtCondition)> = Vec::new();
    for transistor in CellTransistor::ALL {
        for &sigma in &options.sigmas {
            for &corner in &options.corners {
                for &temp in &options.temperatures {
                    grid.push((
                        transistor,
                        sigma,
                        PvtCondition::new(corner, options.vdd, temp),
                    ));
                }
            }
        }
    }
    let solved = parallel_map_isolated(
        options.jobs,
        &grid,
        |_, &(transistor, sigma, pvt)| {
            let pattern = MismatchPattern::symmetric().with(transistor, Sigma(sigma));
            let inst = CellInstance::with_pattern(pattern, pvt);
            let timer = PointTimer::start(format!("{transistor}/{sigma:+.0}σ @ {pvt}"));
            // ERC pre-flight on the cell netlist this point would
            // solve, then the two DRV searches.
            let point = build_retention_netlist(&inst, options.vdd)
                .and_then(|(nl, _)| preflight_netlist(&nl))
                .and_then(|_| drv_ds(&inst, StoredBit::One, &options.drv))
                .and_then(|d1| Ok((d1.drv, drv_ds(&inst, StoredBit::Zero, &options.drv)?.drv)));
            if !matches!(&point, Err(e) if !e.is_recordable()) {
                timer.finish();
            }
            point
        },
        |_, _| {},
    );
    // Panicked points surface as recordable per-point errors.
    let solved: Vec<_> = solved
        .into_iter()
        .map(|o| o.unwrap_or_else(|what| Err(anasim::Error::Panicked { what })))
        .collect();

    let per_point = options.corners.len() * options.temperatures.len();
    let mut series = Vec::with_capacity(6);
    let mut failures = Vec::new();
    let mut coverage = Coverage::default();
    let mut results = grid.iter().zip(solved);
    for transistor in CellTransistor::ALL {
        let mut points = Vec::with_capacity(options.sigmas.len());
        for &sigma in &options.sigmas {
            let mut best1 = (0.0f64, PvtCondition::nominal());
            let mut best0 = (0.0f64, PvtCondition::nominal());
            for _ in 0..per_point {
                let (&(_, _, pvt), point) = results
                    .next()
                    .expect("the executor returns one result per grid point");
                match point {
                    Ok((d1, d0)) => {
                        coverage.record_ok();
                        if d1 > best1.0 {
                            best1 = (d1, pvt);
                        }
                        if d0 > best0.0 {
                            best0 = (d0, pvt);
                        }
                    }
                    Err(e) if e.is_recordable() => {
                        coverage.record_failure();
                        let attempts = if e.is_retryable() {
                            options.drv.retry.max_attempts
                        } else {
                            0
                        };
                        failures.push(PointFailure::new(None, None, Some(pvt), e, attempts));
                    }
                    Err(e) => return Err(e),
                }
            }
            points.push(Fig4Point {
                sigma,
                drv_ds1: best1.0,
                drv_ds0: best0.0,
                worst_pvt_ds1: best1.1,
                worst_pvt_ds0: best0.1,
            });
        }
        obs::progress(&format!("fig4 series {transistor} done ({coverage})"));
        series.push(Fig4Series { transistor, points });
    }
    coverage.elapsed_s = sweep_start.elapsed().as_secs_f64();
    publish_coverage(&coverage);
    Ok(Fig4Data {
        series,
        failures,
        coverage,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_sweep_reproduces_observations() {
        let data = fig4(&Fig4Options::quick()).unwrap();
        assert_eq!(data.series.len(), 6);
        assert!(
            data.coverage.is_complete() && data.failures.is_empty(),
            "healthy quick sweep must be complete: {}",
            data.coverage
        );
        assert!(data.observation1_holds(), "observation 1 failed");
        assert!(data.observation2_holds(), "observation 2 failed");
        assert!(data.pass_transistors_matter_less());
    }

    #[test]
    fn symmetric_point_exceeds_60mv() {
        // The paper: with zero variation both DRVs are "over 60 mV".
        let data = fig4(&Fig4Options::quick()).unwrap();
        for t in CellTransistor::ALL {
            let p = data.of(t).at_sigma(0.0).expect("0 is swept");
            assert!(p.drv_ds1 > 0.06, "{t}: DRV_DS1 {}", p.drv_ds1);
            assert!(p.drv_ds0 > 0.06, "{t}: DRV_DS0 {}", p.drv_ds0);
        }
    }

    #[test]
    fn opposite_inverter_mirrors() {
        // Variation on MPcc2/MNcc2 affects DRV_DS1 with the opposite
        // sign of MPcc1/MNcc1.
        let data = fig4(&Fig4Options::quick()).unwrap();
        let s1 = data.of(CellTransistor::MPcc1);
        let s2 = data.of(CellTransistor::MPcc2);
        // MPcc1 at -6σ raises DRV1; MPcc2 at +6σ raises DRV1.
        assert!(s1.at_sigma(-6.0).unwrap().drv_ds1 > s1.at_sigma(6.0).unwrap().drv_ds1);
        assert!(s2.at_sigma(6.0).unwrap().drv_ds1 > s2.at_sigma(-6.0).unwrap().drv_ds1);
    }
}
