//! Test flows: sequences of March m-LZ applications under chosen
//! (V_DD, Vref) conditions — the subject of the paper's Table III.

use std::fmt;

use march::{engine, library, TestOutcome};
use process::{ProcessCorner, PvtCondition};
use regulator::{Defect, FeedMode, RegulatorCircuit, RegulatorDesign, VrefTap};
use sram::drv::{drv_ds, DrvOptions};
use sram::{
    ArrayGeometry, ArrayLoad, CellInstance, CellPopulation, DsConditions, SramDevice, StoredBit,
    TableRetention,
};

use crate::case_study::CaseStudy;
use crate::sram_target::SramTarget;

/// One execution of March m-LZ under fixed test conditions (a row of
/// Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowIteration {
    /// Supply during the iteration, volts.
    pub vdd: f64,
    /// Selected reference tap.
    pub tap: VrefTap,
    /// Deep-sleep dwell per DSM, seconds.
    pub ds_time: f64,
}

impl FlowIteration {
    /// Expected (fault-free) `Vreg`.
    pub fn expected_vreg(&self) -> f64 {
        self.tap.fraction() * self.vdd
    }
}

impl fmt::Display for FlowIteration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VDD={:.1}V, Vref={}, Vreg={:.3}V, DS time={:.0}ms",
            self.vdd,
            self.tap,
            self.expected_vreg(),
            self.ds_time * 1e3
        )
    }
}

/// A named sequence of flow iterations.
#[derive(Debug, Clone, PartialEq)]
pub struct TestFlow {
    name: String,
    iterations: Vec<FlowIteration>,
}

impl TestFlow {
    /// Creates a flow.
    pub fn new(name: &str, iterations: Vec<FlowIteration>) -> Self {
        TestFlow {
            name: name.to_string(),
            iterations,
        }
    }

    /// The flow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The iterations in order.
    pub fn iterations(&self) -> &[FlowIteration] {
        &self.iterations
    }

    /// The unoptimized exhaustive flow: all 12 (V_DD, Vref)
    /// combinations.
    pub fn exhaustive(ds_time: f64) -> Self {
        let mut iterations = Vec::with_capacity(12);
        for &vdd in &[1.0, 1.1, 1.2] {
            for tap in VrefTap::ALL {
                iterations.push(FlowIteration { vdd, tap, ds_time });
            }
        }
        TestFlow::new("exhaustive 12-combination flow", iterations)
    }

    /// The paper's optimized flow (Table III): three iterations with
    /// `Vreg` pinned just above the worst-case retention voltage.
    pub fn paper_optimized(ds_time: f64) -> Self {
        TestFlow::new(
            "optimized flow (Table III)",
            vec![
                FlowIteration {
                    vdd: 1.0,
                    tap: VrefTap::V74,
                    ds_time,
                },
                FlowIteration {
                    vdd: 1.1,
                    tap: VrefTap::V70,
                    ds_time,
                },
                FlowIteration {
                    vdd: 1.2,
                    tap: VrefTap::V64,
                    ds_time,
                },
            ],
        )
    }

    /// Total test complexity (March m-LZ is 5N+4 per iteration).
    pub fn complexity(&self, words: usize) -> usize {
        self.iterations.len() * (5 * words + 4)
    }

    /// Fractional test-time reduction versus `other`
    /// (`1 − self/other`); the paper reports 75 % versus the exhaustive
    /// flow.
    pub fn time_reduction_vs(&self, other: &TestFlow) -> f64 {
        1.0 - self.iterations.len() as f64 / other.iterations.len() as f64
    }

    /// Wall-clock tester time of the flow in seconds: per iteration,
    /// `(5N+2)` read/write cycles at `cycle_time` plus the two DS
    /// dwells. On the paper's 4K×64 block with a 10 ns cycle, the
    /// dwells dominate (2 ms vs ≈0.2 ms of cycles), so the 75 %
    /// iteration-count reduction is also a ≈75 % wall-clock reduction.
    pub fn duration_seconds(&self, words: usize, cycle_time: f64) -> f64 {
        self.iterations
            .iter()
            .map(|it| (5 * words + 2) as f64 * cycle_time + 2.0 * it.ds_time)
            .sum()
    }
}

impl fmt::Display for TestFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}:", self.name)?;
        for (i, it) in self.iterations.iter().enumerate() {
            writeln!(f, "  iteration {}: {}", i + 1, it)?;
        }
        Ok(())
    }
}

/// Environment for an end-to-end flow run: the die's corner and
/// temperature (supply varies per iteration).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowEnvironment {
    /// Process corner of the device under test.
    pub corner: ProcessCorner,
    /// Test temperature, °C (the paper recommends testing hot).
    pub temp_c: f64,
    /// Geometry of the simulated memory (defaults small for speed; the
    /// real part is [`ArrayGeometry::paper`]).
    pub geometry: ArrayGeometry,
    /// DRV search tuning.
    pub drv: DrvOptions,
    /// Array-load samples.
    pub load_points: usize,
}

impl FlowEnvironment {
    /// Hot test insertion on an `fs` die with a small array (fast).
    pub fn hot_small() -> Self {
        FlowEnvironment {
            corner: ProcessCorner::FastNSlowP,
            temp_c: 125.0,
            geometry: ArrayGeometry::small(),
            drv: DrvOptions::coarse(),
            load_points: 5,
        }
    }
}

/// Result of one flow iteration against a defective device.
#[derive(Debug, Clone)]
pub struct IterationResult {
    /// The conditions applied.
    pub iteration: FlowIteration,
    /// The rail voltage the defective regulator actually delivered.
    pub vddcc: f64,
    /// March m-LZ outcome.
    pub outcome: TestOutcome,
}

/// Result of a full flow run.
#[derive(Debug, Clone)]
pub struct FlowRun {
    /// Per-iteration results, in order.
    pub iterations: Vec<IterationResult>,
}

impl FlowRun {
    /// Whether any iteration detected the defect.
    pub fn detected(&self) -> bool {
        self.iterations.iter().any(|r| r.outcome.detected())
    }

    /// Index of the first detecting iteration.
    pub fn first_detection(&self) -> Option<usize> {
        self.iterations.iter().position(|r| r.outcome.detected())
    }
}

/// Runs a test flow end-to-end against a device whose regulator
/// carries `defect` at `ohms`, with `cs`-patterned cells placed in the
/// array: per iteration, the regulator is solved electrically to find
/// the actual deep-sleep rail voltage, the behavioural SRAM is
/// configured with the measured retention voltages, and March m-LZ is
/// applied.
///
/// # Errors
///
/// Propagates electrical solver failures.
pub fn run_flow_against_defect(
    flow: &TestFlow,
    defect: Defect,
    ohms: f64,
    cs: &CaseStudy,
    env: &FlowEnvironment,
    design: &RegulatorDesign,
) -> Result<FlowRun, anasim::Error> {
    let mut results = Vec::with_capacity(flow.iterations().len());
    for &iteration in flow.iterations() {
        let pvt = PvtCondition::new(env.corner, iteration.vdd, env.temp_c);
        // Retention voltages at this condition.
        let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
        let special_drv = drv_ds(&stressed, cs.weak_bit, &env.drv)?.drv;
        let symmetric = CellInstance::symmetric(pvt);
        let symmetric_drv = drv_ds(&symmetric, StoredBit::One, &env.drv)?.drv;
        // Defective regulator under the full array load.
        let load = ArrayLoad::build(
            &symmetric,
            &[CellPopulation {
                pattern: cs.pattern(),
                count: cs.cell_count(),
                stored: cs.weak_bit,
            }],
            256 * 1024,
            1.3,
            env.load_points,
        )?;
        let vddcc = if defect.is_transient_mechanism() {
            regulator::activation_transient(
                design,
                pvt,
                iteration.tap,
                defect,
                ohms,
                &load,
                iteration.ds_time.min(1.0e-3),
                20.0e-6,
            )?
            .min_vddcc()
        } else {
            let mut circuit = RegulatorCircuit::new(design, pvt, iteration.tap, FeedMode::Static)?;
            circuit.inject(defect, ohms);
            circuit.solve(&load)?.vddcc
        };
        // Behavioural device with the measured retention thresholds.
        let mut device = SramDevice::new(
            env.geometry,
            DsConditions { vreg: vddcc },
            Box::new(TableRetention {
                symmetric_drv,
                special_drv,
            }),
        );
        let count = cs.cell_count().min(env.geometry.cells());
        device
            .array_mut()
            .place_pattern_strided(cs.pattern(), count, 8);
        let mut target = SramTarget::new(device);
        let outcome = engine::run(&library::march_mlz(iteration.ds_time), &mut target);
        results.push(IterationResult {
            iteration,
            vddcc,
            outcome,
        });
    }
    Ok(FlowRun {
        iterations: results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flow_shapes() {
        let ex = TestFlow::exhaustive(1e-3);
        assert_eq!(ex.iterations().len(), 12);
        let opt = TestFlow::paper_optimized(1e-3);
        assert_eq!(opt.iterations().len(), 3);
        assert!((opt.time_reduction_vs(&ex) - 0.75).abs() < 1e-12);
        assert_eq!(opt.complexity(4096), 3 * (5 * 4096 + 4));
    }

    #[test]
    fn wall_clock_reduction_matches_iteration_reduction() {
        let opt = TestFlow::paper_optimized(1e-3);
        let exh = TestFlow::exhaustive(1e-3);
        let words = 4096;
        let cycle = 10.0e-9;
        let t_opt = opt.duration_seconds(words, cycle);
        let t_exh = exh.duration_seconds(words, cycle);
        // Identical per-iteration cost: the wall-clock ratio equals the
        // iteration ratio exactly.
        assert!(((1.0 - t_opt / t_exh) - 0.75).abs() < 1e-12);
        // And the dwells dominate the cycles on the paper's block.
        let cycles_per_iter = (5 * words + 2) as f64 * cycle;
        assert!(cycles_per_iter < 2.0e-3 / 5.0);
        // Sanity on magnitude: the optimized flow is a few ms.
        assert!((6.0e-3..8.0e-3).contains(&t_opt), "{t_opt}");
    }

    #[test]
    fn table3_vreg_values_match_paper() {
        // Table III: Vreg = 0.740, 0.770, 0.768 V.
        let flow = TestFlow::paper_optimized(1e-3);
        let vregs: Vec<f64> = flow
            .iterations()
            .iter()
            .map(|i| i.expected_vreg())
            .collect();
        assert!((vregs[0] - 0.740).abs() < 1e-9);
        assert!((vregs[1] - 0.770).abs() < 1e-9);
        assert!((vregs[2] - 0.768).abs() < 1e-9);
        // Every iteration keeps Vreg at or above the worst-case DRV.
        for v in vregs {
            assert!(v >= crate::case_study::WORST_CASE_DRV);
        }
    }

    #[test]
    fn iterations_match_tap_rule() {
        use crate::defect_analysis::tap_for_vdd;
        for it in TestFlow::paper_optimized(1e-3).iterations() {
            assert_eq!(it.tap, tap_for_vdd(it.vdd));
        }
    }

    #[test]
    fn display_formats() {
        let flow = TestFlow::paper_optimized(1e-3);
        let s = flow.to_string();
        assert!(s.contains("iteration 1"));
        assert!(s.contains("0.740V"));
        assert!(s.contains("DS time=1ms"));
    }

    #[test]
    fn end_to_end_df16_detected_by_optimized_flow() {
        let cs = CaseStudy::new(1, StoredBit::One);
        let run = run_flow_against_defect(
            &TestFlow::paper_optimized(1e-3),
            Defect::new(16),
            200.0e3, // hefty open in the output stage
            &cs,
            &FlowEnvironment::hot_small(),
            &RegulatorDesign::lp40nm(),
        )
        .unwrap();
        assert!(run.detected(), "Df16 @ 200k must be caught");
        assert!(run.first_detection().is_some());
        // The delivered rail is visibly depressed.
        assert!(run.iterations[0].vddcc < 0.72);
    }

    #[test]
    fn end_to_end_healthy_value_passes() {
        let cs = CaseStudy::new(1, StoredBit::One);
        let run = run_flow_against_defect(
            &TestFlow::paper_optimized(1e-3),
            Defect::new(18), // negligible sense-line defect
            100.0e6,
            &cs,
            &FlowEnvironment::hot_small(),
            &RegulatorDesign::lp40nm(),
        )
        .unwrap();
        assert!(!run.detected(), "negligible defect must pass");
    }
}
