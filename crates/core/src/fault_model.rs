//! The paper's fault model: the data retention fault in deep-sleep
//! mode (DRF_DS), §V.

use march::MarchTest;

/// The DRF_DS fault model.
///
/// > *In DS mode, the regulated voltage Vreg is reduced to a level such
/// > that the core-cell array supply voltage is lower than DRV_DS of
/// > the SRAM. As a consequence, one or more core-cells in the array
/// > loose the stored data.*
///
/// It is a **dynamic** fault: sensitization requires the three-step
/// sequence (1) switch ACT→DS, (2) wake up, (3) read every cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrfDs;

impl DrfDs {
    /// Number of operations required to sensitize the fault (dynamic
    /// fault of order 3: DSM, WUP, read).
    pub const SENSITIZATION_OPS: usize = 3;

    /// Whether a March test contains the sensitization sequence for
    /// both stored values: for each background `b ∈ {0, 1}` there must
    /// be a DSM entered while the array holds `b`, followed (after
    /// wake-up) by a read expecting `b`.
    pub fn detected_by(test: &MarchTest) -> bool {
        Self::detects_background(test, true) && Self::detects_background(test, false)
    }

    /// Sensitization check for a single background value.
    pub fn detects_background(test: &MarchTest, background: bool) -> bool {
        use march::{MarchElement, Op};
        // Track the array background as the algorithm runs; `None`
        // until the first full write sweep.
        let mut holds: Option<bool> = None;
        let mut armed = false; // a DSM occurred while holding `background`
        for element in test.elements() {
            match element {
                MarchElement::Sweep { ops, .. } => {
                    for &op in ops {
                        match op {
                            Op::R0 | Op::R1 => {
                                if armed && op.background() == background {
                                    // A read of the weak value after the
                                    // DS episode: detection. (The first
                                    // read in the sweep sees the flip.)
                                    return true;
                                }
                            }
                            Op::W0 | Op::W1 => {
                                holds = Some(op.background());
                                // Rewriting the array clears any armed
                                // but unobserved sensitization.
                                if op.background() != background {
                                    armed = false;
                                }
                            }
                        }
                    }
                }
                MarchElement::DeepSleep { .. } => {
                    if holds == Some(background) {
                        armed = true;
                    }
                }
                MarchElement::WakeUp => {}
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march::library;

    #[test]
    fn march_mlz_detects_both_backgrounds() {
        let t = library::march_mlz(1e-3);
        assert!(DrfDs::detects_background(&t, true));
        assert!(DrfDs::detects_background(&t, false));
        assert!(DrfDs::detected_by(&t));
    }

    #[test]
    fn march_lz_detects_only_ones() {
        // March LZ has a single DSM with the array holding '1'.
        let t = library::march_lz(1e-3);
        assert!(DrfDs::detects_background(&t, true));
        assert!(!DrfDs::detects_background(&t, false));
        assert!(!DrfDs::detected_by(&t));
    }

    #[test]
    fn classic_tests_never_detect() {
        for t in [
            library::mats_plus(),
            library::march_cminus(),
            library::march_ss(),
        ] {
            assert!(!DrfDs::detected_by(&t), "{}", t.name());
        }
    }

    #[test]
    fn rewriting_before_reading_clears_sensitization() {
        // w1; DSM; WUP; w0; r0 — the flip of a '1' is overwritten
        // before any read sees it.
        let t = march::MarchTest::parse("blind", "{⇕(w1); DSM; WUP; ⇑(w0); ⇑(r0)}", 1e-3).unwrap();
        assert!(!DrfDs::detects_background(&t, true));
    }

    #[test]
    fn sensitization_order_is_three() {
        assert_eq!(DrfDs::SENSITIZATION_OPS, 3);
    }
}
