//! Work-stealing parallel executor for campaign grids.
//!
//! Every paper table is an embarrassingly-parallel grid — Table II
//! alone is defects × case-studies, each hiding a resistance bisection
//! of full Newton solves — so the campaign drivers fan their grid
//! points across cores through [`parallel_map_ordered`]. The design
//! constraints, in order of importance:
//!
//! 1. **Determinism.** The table a campaign prints, the rows it
//!    checkpoints, and its coverage footer must be byte-identical
//!    regardless of `--jobs`. Every result carries its grid index;
//!    the caller's `on_ready` callback fires in strict index order
//!    (out-of-order completions are parked until the prefix is
//!    contiguous), and the returned `Vec` is in grid order. Workers
//!    never touch shared mutable campaign state.
//! 2. **No new dependencies.** The build is offline: plain
//!    `std::thread::scope`, a shared atomic work index for stealing,
//!    and an `mpsc` channel for completions. `--jobs 1` (or a
//!    single-item grid) takes a purely sequential inline path that
//!    reproduces the pre-parallel executors bit-for-bit.
//! 3. **Observability survives the join.** Worker threads flush their
//!    thread-local obs buffers ([`obs::flush`]) before exiting the
//!    scope, so counters and histograms recorded on workers are
//!    visible in the registry snapshot the moment
//!    [`parallel_map_ordered`] returns — run manifests and JSONL
//!    sinks don't silently drop tail events.
//!
//! Wall-clock accounting: the executor is why [`crate::Coverage`]
//! merges `elapsed_s` by `max` rather than `+` — sub-results computed
//! concurrently must not inflate the campaign's throughput figure.
//! Campaign drivers stamp wall-clock once, at the top level, around
//! the whole `parallel_map_ordered` call.

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// The machine's available parallelism (1 when it cannot be queried).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Resolves a requested `--jobs` value: `0` means "auto" (available
/// parallelism); anything else is taken literally.
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        available_jobs()
    } else {
        requested
    }
}

/// One work item's outcome under per-point panic isolation
/// ([`parallel_map_isolated`]): either the closure's result or the
/// message of the panic that killed it.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkOutcome<R> {
    /// The work closure returned normally.
    Done(R),
    /// The work closure panicked; the point is lost but the campaign
    /// is not.
    Panicked {
        /// The panic payload, when it was a `&str` or `String`
        /// (`panic!` and all `assert!` macros), else a placeholder.
        message: String,
    },
}

impl<R> WorkOutcome<R> {
    /// The result, when the point completed.
    pub fn as_done(&self) -> Option<&R> {
        match self {
            WorkOutcome::Done(r) => Some(r),
            WorkOutcome::Panicked { .. } => None,
        }
    }

    /// The panic message, when the point panicked.
    pub fn panic_message(&self) -> Option<&str> {
        match self {
            WorkOutcome::Done(_) => None,
            WorkOutcome::Panicked { message } => Some(message),
        }
    }

    /// Unwraps the result, synthesizing one from the panic message for
    /// lost points — the hook campaign drivers use to turn a panic into
    /// a recordable per-point error value.
    pub fn unwrap_or_else(self, on_panic: impl FnOnce(String) -> R) -> R {
        match self {
            WorkOutcome::Done(r) => r,
            WorkOutcome::Panicked { message } => on_panic(message),
        }
    }
}

/// Renders a caught panic payload as a message string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Maps `work` over `items` on up to `jobs` worker threads, delivering
/// results in grid order.
///
/// * `jobs == 0` resolves to the machine's available parallelism;
///   `jobs == 1` (or fewer items than 2) runs inline on the calling
///   thread with no thread machinery at all — bit-for-bit the
///   sequential behavior.
/// * `work(index, &items[index])` runs on a worker thread; items are
///   claimed from a shared atomic index (idle workers steal the next
///   unclaimed item, so an expensive point never serializes the rest
///   behind it).
/// * `on_ready(index, &result)` runs on the *calling* thread, in
///   strict index order, as soon as the contiguous prefix up to
///   `index` has completed — this is the single-writer hook for
///   checkpoint appends and progress lines. Out-of-order completions
///   are parked until their turn.
/// * The returned `Vec` holds every result in item order.
///
/// Worker threads flush their thread-local obs buffers before the
/// scope joins, so metrics recorded inside `work` are globally visible
/// when this function returns.
///
/// A panic inside `work` still panics the caller — but only after
/// every other item has run to completion (panics are caught per point
/// by [`parallel_map_isolated`] underneath, so one poisoned point
/// never takes down in-flight workers). Campaign drivers that must
/// *survive* a panicking point call [`parallel_map_isolated`] directly
/// and record the [`WorkOutcome::Panicked`] as a point failure.
///
/// # Panics
///
/// Re-raises the first (lowest-index) panic observed in `work`.
pub fn parallel_map_ordered<T, R>(
    jobs: usize,
    items: &[T],
    work: impl Fn(usize, &T) -> R + Sync,
    mut on_ready: impl FnMut(usize, &R),
) -> Vec<R>
where
    T: Sync,
    R: Send,
{
    let mut first_panic: Option<(usize, String)> = None;
    let outcomes = parallel_map_isolated(jobs, items, work, |i, outcome| match outcome {
        WorkOutcome::Done(r) if first_panic.is_none() => on_ready(i, r),
        WorkOutcome::Done(_) => {}
        WorkOutcome::Panicked { message } => {
            if first_panic.is_none() {
                first_panic = Some((i, message.clone()));
            }
        }
    });
    if let Some((i, message)) = first_panic {
        panic!("worker panicked at grid point {i}: {message}");
    }
    outcomes
        .into_iter()
        .map(|o| o.unwrap_or_else(|_| unreachable!("panics re-raised above")))
        .collect()
}

/// As [`parallel_map_ordered`], but with per-point panic isolation: a
/// panic inside `work` is caught on the worker, counted in the
/// `executor.panic` obs counter, and delivered as
/// [`WorkOutcome::Panicked`] at that item's index — every other item
/// still runs, `on_ready` still fires in strict index order, and the
/// call never unwinds because of `work`.
///
/// This is the executor contract campaign drivers build on: one
/// poisoned grid point becomes one recorded casualty, not the loss of
/// a multi-hour campaign's in-flight results.
pub fn parallel_map_isolated<T, R>(
    jobs: usize,
    items: &[T],
    work: impl Fn(usize, &T) -> R + Sync,
    mut on_ready: impl FnMut(usize, &WorkOutcome<R>),
) -> Vec<WorkOutcome<R>>
where
    T: Sync,
    R: Send,
{
    let guarded = |i: usize, item: &T| -> WorkOutcome<R> {
        match panic::catch_unwind(AssertUnwindSafe(|| work(i, item))) {
            Ok(r) => WorkOutcome::Done(r),
            Err(payload) => {
                obs::counter_add("executor.panic", 1);
                // The panicking closure unwound past its own flush
                // points: drain the thread-local metric buffers now so
                // counters recorded before the panic are not lost, and
                // capture the point's in-flight convergence trajectory
                // — a panicked point is exactly the kind the flight
                // recorder exists to explain.
                obs::flush();
                if let Some(traj) = obs::flight_take() {
                    obs::record_trace(&format!("grid item {i}"), "panicked", 0.0, traj);
                }
                WorkOutcome::Panicked {
                    message: panic_message(payload.as_ref()),
                }
            }
        }
    };

    let jobs = effective_jobs(jobs).min(items.len());
    if jobs <= 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| {
                let r = guarded(i, item);
                on_ready(i, &r);
                r
            })
            .collect();
    }

    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, WorkOutcome<R>)>();
    let mut slots: Vec<Option<WorkOutcome<R>>> = Vec::new();
    slots.resize_with(items.len(), || None);

    std::thread::scope(|scope| {
        for _ in 0..jobs {
            let tx = tx.clone();
            let next = &next;
            let guarded = &guarded;
            scope.spawn(move || {
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    let r = guarded(i, &items[i]);
                    if tx.send((i, r)).is_err() {
                        break; // receiver gone: the scope is unwinding
                    }
                }
                // Drain this worker's thread-local metric buffers into
                // the global registry before the scope joins — without
                // this, counters recorded on workers below the flush
                // threshold would sit invisible until thread teardown
                // raced the caller's snapshot.
                obs::flush();
            });
        }
        drop(tx); // the receive loop ends when the last worker exits

        let mut emit_next = 0usize;
        for (i, r) in rx {
            slots[i] = Some(r);
            while let Some(Some(ready)) = slots.get(emit_next) {
                on_ready(emit_next, ready);
                emit_next += 1;
            }
        }
    });

    slots
        .into_iter()
        .map(|s| s.expect("every item either completed or was caught panicking"))
        .collect()
}

/// A deterministic single-writer queue used by tests to observe
/// `on_ready` ordering; kept here so campaign drivers can share it if
/// they need to stage ordered side effects.
#[derive(Debug, Default)]
pub struct OrderedLog<R> {
    entries: VecDeque<(usize, R)>,
}

impl<R> OrderedLog<R> {
    /// Appends one `(index, value)` pair.
    pub fn push(&mut self, index: usize, value: R) {
        self.entries.push_back((index, value));
    }

    /// The recorded indices, in arrival order.
    pub fn indices(&self) -> Vec<usize> {
        self.entries.iter().map(|(i, _)| *i).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn effective_jobs_resolves_auto() {
        assert_eq!(effective_jobs(1), 1);
        assert_eq!(effective_jobs(7), 7);
        assert!(effective_jobs(0) >= 1);
    }

    #[test]
    fn sequential_path_preserves_order_and_results() {
        let items: Vec<u64> = (0..10).collect();
        let mut log = OrderedLog::default();
        let out = parallel_map_ordered(1, &items, |i, x| x * x + i as u64, |i, r| log.push(i, *r));
        assert_eq!(
            out,
            items
                .iter()
                .enumerate()
                .map(|(i, x)| x * x + i as u64)
                .collect::<Vec<_>>()
        );
        assert_eq!(log.indices(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_results_are_in_item_order() {
        let items: Vec<u64> = (0..200).collect();
        let out = parallel_map_ordered(4, &items, |_, x| x * 3, |_, _| {});
        assert_eq!(out, items.iter().map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn on_ready_fires_in_strict_index_order_under_parallelism() {
        // Stagger the work so later indices routinely finish first;
        // the callback order must stay 0,1,2,... regardless.
        let items: Vec<u64> = (0..64).collect();
        let mut log = OrderedLog::default();
        let out = parallel_map_ordered(
            8,
            &items,
            |i, x| {
                if i % 7 == 0 {
                    std::thread::sleep(std::time::Duration::from_millis(3));
                }
                x + 1
            },
            |i, r| log.push(i, *r),
        );
        assert_eq!(log.indices(), (0..64).collect::<Vec<_>>());
        assert_eq!(out.len(), 64);
    }

    #[test]
    fn empty_and_singleton_grids() {
        let out = parallel_map_ordered(8, &Vec::<u32>::new(), |_, x| *x, |_, _| {});
        assert!(out.is_empty());
        let out = parallel_map_ordered(8, &[41u32], |_, x| x + 1, |_, _| {});
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn every_item_is_claimed_exactly_once() {
        let hits = AtomicU64::new(0);
        let items: Vec<usize> = (0..100).collect();
        parallel_map_ordered(
            6,
            &items,
            |_, _| {
                hits.fetch_add(1, Ordering::Relaxed);
            },
            |_, _| {},
        );
        assert_eq!(hits.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn isolated_panic_is_delivered_at_its_index_only() {
        let items: Vec<u64> = (0..32).collect();
        for jobs in [1, 4] {
            let mut log = OrderedLog::default();
            let before = obs::snapshot()
                .counters
                .get("executor.panic")
                .copied()
                .unwrap_or(0);
            let out = parallel_map_isolated(
                jobs,
                &items,
                |i, x| {
                    assert!(i != 13, "poisoned point 13");
                    x * 2
                },
                |i, r| log.push(i, r.as_done().copied()),
            );
            // Strict index order survives the panic, with a hole at 13.
            assert_eq!(log.indices(), (0..32).collect::<Vec<_>>());
            assert_eq!(out.len(), 32);
            for (i, o) in out.iter().enumerate() {
                if i == 13 {
                    assert!(
                        o.panic_message().is_some_and(|m| m.contains("poisoned")),
                        "jobs={jobs}: {o:?}"
                    );
                } else {
                    assert_eq!(o.as_done(), Some(&(i as u64 * 2)), "jobs={jobs}");
                }
            }
            obs::flush();
            let after = obs::snapshot()
                .counters
                .get("executor.panic")
                .copied()
                .unwrap_or(0);
            assert_eq!(after - before, 1, "jobs={jobs}: one panic, one count");
        }
    }

    #[test]
    fn isolated_outcomes_are_identical_across_job_counts() {
        let items: Vec<u64> = (0..50).collect();
        let run = |jobs| {
            parallel_map_isolated(
                jobs,
                &items,
                |i, x| {
                    assert!(i % 17 != 3, "grid point {i} is poisoned");
                    x + 100
                },
                |_, _| {},
            )
        };
        assert_eq!(run(1), run(4));
        assert_eq!(run(1), run(8));
    }

    #[test]
    #[should_panic(expected = "worker panicked at grid point 7")]
    fn ordered_map_still_propagates_panics() {
        let items: Vec<u64> = (0..16).collect();
        let _ = parallel_map_ordered(
            4,
            &items,
            |i, x| {
                assert!(i != 7, "bad item");
                *x
            },
            |_, _| {},
        );
    }

    #[test]
    fn unwrap_or_else_synthesizes_a_value_for_panics() {
        let done: WorkOutcome<i32> = WorkOutcome::Done(5);
        assert_eq!(done.unwrap_or_else(|_| -1), 5);
        let lost: WorkOutcome<i32> = WorkOutcome::Panicked {
            message: "boom".into(),
        };
        assert_eq!(
            lost.unwrap_or_else(|m| if m == "boom" { -1 } else { -2 }),
            -1
        );
    }

    #[test]
    fn panicked_points_flush_buffers_and_surrender_their_trajectory() {
        // A panic unwinds past the worker's normal flush points; the
        // catch_unwind arm must drain the thread-local counter buffers
        // (so pre-panic increments survive) and hand the in-flight
        // convergence ring to the registry as a "panicked" trace. Both
        // must already be visible when on_ready fires for that index —
        // on the inline jobs=1 path there is no later flush at all.
        let key = "executor.test.pre_panic_events";
        let items: Vec<u64> = (0..8).collect();
        for jobs in [1usize, 4] {
            obs::flight_enable(obs::DEFAULT_CAPACITY);
            let before = obs::snapshot().counters.get(key).copied().unwrap_or(0);
            let mut at_ready: Option<obs::Snapshot> = None;
            parallel_map_isolated(
                jobs,
                &items,
                |i, _| {
                    if i == 3 {
                        obs::counter_add(key, 1);
                        obs::flight_begin();
                        obs::flight_record(0.5, 1.0);
                        panic!("poisoned point 3");
                    }
                },
                |i, _| {
                    if i == 3 {
                        at_ready = Some(obs::snapshot());
                    }
                },
            );
            obs::flight_disable();
            let snap = at_ready.expect("on_ready fired for index 3");
            assert_eq!(
                snap.counters.get(key).copied().unwrap_or(0) - before,
                1,
                "jobs={jobs}: pre-panic counter must be flushed before delivery"
            );
            assert!(
                snap.traces
                    .iter()
                    .any(|t| t.key == "grid item 3" && t.outcome == "panicked"),
                "jobs={jobs}: the panicked point's trajectory must reach the registry"
            );
        }
    }

    #[test]
    fn worker_thread_obs_buffers_drain_at_join() {
        // Thread-local counter buffers only reach the global registry
        // on flush; the executor guarantees workers flush before the
        // scope joins, so a snapshot taken right after the call sees
        // every worker-side increment. Delta-based so it never races
        // other tests sharing the process-global registry.
        let key = "executor.test.worker_events";
        let before = obs::snapshot().counters.get(key).copied().unwrap_or(0);
        let items: Vec<u64> = (0..32).collect();
        parallel_map_ordered(4, &items, |_, _| obs::counter_add(key, 1), |_, _| {});
        let after = obs::snapshot().counters.get(key).copied().unwrap_or(0);
        assert_eq!(
            after - before,
            32,
            "worker-thread obs buffers must be visible immediately after the join"
        );
    }
}
