//! Characterization of the *other* defect category — the paper's
//! stated future work.
//!
//! §IV.B closes with: *"Defects that cause increased static power
//! consumption in DS mode will be studied in detail in our next
//! work."* This module is that study for the reproduced design: for
//! every category-1 defect it finds the minimum resistance at which
//! deep-sleep static power exceeds a budget factor over the fault-free
//! value — the power-side analogue of Table II.

use process::PvtCondition;
use regulator::{Defect, DefectCategory, FeedMode, RegulatorCircuit, RegulatorDesign};
use sram::{ArrayLoad, CellInstance, StaticPowerModel};

use crate::defect_analysis::tap_for_vdd;

/// Options for the power-defect campaign.
#[derive(Debug, Clone)]
pub struct PowerDefectOptions {
    /// Operating condition (power defects are characterized hot, where
    /// static power matters).
    pub pvt: PvtCondition,
    /// A defect is "power-faulty" when DS static power exceeds the
    /// fault-free value by this factor.
    pub budget_factor: f64,
    /// Defects to characterize (default: the 9 category-1 sites).
    pub defects: Vec<Defect>,
    /// Regulator design.
    pub design: RegulatorDesign,
    /// Static power model.
    pub power: StaticPowerModel,
    /// Search bounds, ohms.
    pub r_min: f64,
    /// Upper bound, ohms.
    pub r_max: f64,
    /// Bisection refinements.
    pub refine_iters: usize,
    /// Array-load samples.
    pub load_points: usize,
}

impl Default for PowerDefectOptions {
    fn default() -> Self {
        PowerDefectOptions {
            pvt: PvtCondition::new(process::ProcessCorner::Typical, 1.1, 125.0),
            budget_factor: 1.5,
            defects: Defect::all()
                .filter(|d| d.expected_category() == DefectCategory::IncreasedPower)
                .collect(),
            design: RegulatorDesign::lp40nm(),
            power: StaticPowerModel::lp40nm(),
            r_min: 100.0,
            r_max: regulator::OPEN_THRESHOLD_OHMS,
            refine_iters: 8,
            load_points: 7,
        }
    }
}

/// One row of the power-defect table.
#[derive(Debug, Clone, Copy)]
pub struct PowerDefectRow {
    /// The characterized defect.
    pub defect: Defect,
    /// Minimum resistance at which DS power exceeds the budget, or
    /// `None` if even a full open stays within budget.
    pub min_ohms: Option<f64>,
    /// Rail voltage with a full open injected.
    pub vddcc_at_open: f64,
    /// DS power with a full open, watts.
    pub power_at_open: f64,
    /// Fault-free DS power, watts.
    pub healthy_power: f64,
}

/// The campaign result.
#[derive(Debug, Clone)]
pub struct PowerDefectReport {
    /// One row per characterized defect.
    pub rows: Vec<PowerDefectRow>,
    /// The condition used.
    pub pvt: PvtCondition,
    /// The budget factor used.
    pub budget_factor: f64,
}

impl std::fmt::Display for PowerDefectReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "category-1 defects at {} (power budget: {:.2}x fault-free DS power)",
            self.pvt, self.budget_factor
        )?;
        let mut t = crate::report::TextTable::new([
            "Defect",
            "min res. for over-budget power",
            "Vddcc at open (V)",
            "DS power at open / healthy",
        ]);
        for row in &self.rows {
            t.push_row([
                row.defect.to_string(),
                crate::report::format_min_resistance(row.min_ohms),
                format!("{:.3}", row.vddcc_at_open),
                format!(
                    "{:.2} uW / {:.2} uW",
                    row.power_at_open * 1e6,
                    row.healthy_power * 1e6
                ),
            ]);
        }
        write!(f, "{t}")
    }
}

/// Runs the campaign.
///
/// # Errors
///
/// Propagates solver failures.
pub fn power_defect_table(
    options: &PowerDefectOptions,
) -> Result<PowerDefectReport, anasim::Error> {
    let pvt = options.pvt;
    let tap = tap_for_vdd(pvt.vdd);
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(
        &base,
        &[],
        options.power.total_cells,
        1.3,
        options.load_points,
    )?;

    let mut circuit = RegulatorCircuit::new(&options.design, pvt, tap, FeedMode::Static)?;
    let healthy_vddcc = circuit.solve(&load)?.vddcc;
    let healthy_power = options.power.deep_sleep_power(&base, healthy_vddcc)?;
    let budget = healthy_power * options.budget_factor;

    let power_at = |circuit: &mut RegulatorCircuit,
                    defect: Defect,
                    ohms: f64|
     -> Result<(f64, f64), anasim::Error> {
        circuit.inject(defect, ohms);
        let vddcc = circuit.solve(&load)?.vddcc;
        Ok((options.power.deep_sleep_power(&base, vddcc)?, vddcc))
    };

    let mut rows = Vec::new();
    for &defect in &options.defects {
        circuit.clear_defects();
        let (p_open, v_open) = power_at(&mut circuit, defect, options.r_max)?;
        let min_ohms = if p_open <= budget {
            None
        } else {
            // Log bisection between r_min (healthy-ish) and r_max.
            let mut lo = options.r_min;
            let mut hi = options.r_max;
            for _ in 0..options.refine_iters {
                let mid = (lo.ln() + hi.ln()).mul_add(0.5, 0.0).exp();
                circuit.clear_defects();
                let (p, _) = power_at(&mut circuit, defect, mid)?;
                if p > budget {
                    hi = mid;
                } else {
                    lo = mid;
                }
            }
            Some(hi)
        };
        rows.push(PowerDefectRow {
            defect,
            min_ohms,
            vddcc_at_open: v_open,
            power_at_open: p_open,
            healthy_power,
        });
    }
    Ok(PowerDefectReport {
        rows,
        pvt,
        budget_factor: options.budget_factor,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category1_defects_raise_power_at_full_open() {
        let opts = PowerDefectOptions {
            defects: vec![Defect::new(13), Defect::new(20), Defect::new(6)],
            ..PowerDefectOptions::default()
        };
        let report = power_defect_table(&opts).unwrap();
        assert_eq!(report.rows.len(), 3);
        for row in &report.rows {
            assert!(
                row.power_at_open > row.healthy_power,
                "{}: open power {} <= healthy {}",
                row.defect,
                row.power_at_open,
                row.healthy_power
            );
            assert!(row.vddcc_at_open > 0.77, "{}", row.defect);
        }
        // The rendered report mentions the budget.
        let text = report.to_string();
        assert!(text.contains("budget"));
    }

    #[test]
    fn bisection_brackets_the_budget_crossing() {
        let opts = PowerDefectOptions {
            defects: vec![Defect::new(20)],
            ..PowerDefectOptions::default()
        };
        let report = power_defect_table(&opts).unwrap();
        let row = &report.rows[0];
        if let Some(r) = row.min_ohms {
            assert!(
                (opts.r_min..=opts.r_max).contains(&r),
                "min resistance {r} out of bounds"
            );
        } else {
            // Acceptable only if even the full open stayed in budget.
            assert!(row.power_at_open <= row.healthy_power * opts.budget_factor);
        }
    }
}
