//! Integration tests: each defect's electrical behaviour matches the
//! paper's Table II "Description" column, probed directly on the
//! circuit rather than through the characterization pipeline.

use process::{ProcessCorner, PvtCondition};
use regulator::{
    activation_transient, static_circuit, Defect, FeedMode, RegulatorCircuit, RegulatorDesign,
    VrefTap,
};
use sram::{ArrayLoad, CellInstance};

fn pvt_hot() -> PvtCondition {
    PvtCondition::new(ProcessCorner::Typical, 1.1, 125.0)
}

fn load(pvt: PvtCondition) -> ArrayLoad {
    let base = CellInstance::symmetric(pvt);
    ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).unwrap()
}

fn taps_with(defect: Defect, ohms: f64, tap: VrefTap) -> ([f64; 5], [f64; 5], f64, f64) {
    let pvt = pvt_hot();
    let l = load(pvt);
    let mut c = static_circuit(pvt, tap).unwrap();
    let healthy = c.solve(&l).unwrap();
    c.inject(defect, ohms);
    let faulty = c.solve(&l).unwrap();
    (healthy.taps, faulty.taps, healthy.vddcc, faulty.vddcc)
}

/// Df1 "reduces voltage at Vref78, Vref74, Vref70, Vref64 and Vbias52".
#[test]
fn df1_reduces_every_tap() {
    let (h, f, _, _) = taps_with(Defect::new(1), 100.0e3, VrefTap::V74);
    for k in 0..5 {
        assert!(f[k] < h[k] - 0.01, "tap {k}: {} !< {}", f[k], h[k]);
    }
}

/// Df2 "reduces Vref74/70/64 and Vbias52, and increases Vref78".
#[test]
fn df2_tap_directions() {
    let (h, f, _, _) = taps_with(Defect::new(2), 100.0e3, VrefTap::V74);
    assert!(f[0] > h[0] + 0.01, "Vref78 rises");
    for k in 1..5 {
        assert!(f[k] < h[k] - 0.01, "tap {k} falls");
    }
}

/// Df3 "reduces Vref70/64 and Vbias52, increases Vref78/74".
#[test]
fn df3_tap_directions() {
    let (h, f, _, _) = taps_with(Defect::new(3), 100.0e3, VrefTap::V70);
    assert!(
        f[0] > h[0] + 0.005 && f[1] > h[1] + 0.005,
        "upper taps rise"
    );
    for k in 2..5 {
        assert!(f[k] < h[k] - 0.005, "tap {k} falls");
    }
}

/// Df4 "reduces Vref64 and Vbias52, increases the other taps".
#[test]
fn df4_tap_directions() {
    let (h, f, _, _) = taps_with(Defect::new(4), 100.0e3, VrefTap::V64);
    for k in 0..3 {
        assert!(f[k] > h[k] + 0.005, "tap {k} rises");
    }
    assert!(
        f[3] < h[3] - 0.005 && f[4] < h[4] - 0.005,
        "lower taps fall"
    );
}

/// Df5 "reduces only the voltage at Vbias52 and increases all others";
/// high resistance values choke the amplifier bias and degrade Vreg.
#[test]
fn df5_bias_only_then_chokes() {
    let (h, f, _, _) = taps_with(Defect::new(5), 100.0e3, VrefTap::V74);
    for k in 0..4 {
        assert!(f[k] > h[k] + 0.001, "tap {k} rises");
    }
    assert!(f[4] < h[4] - 0.01, "Vbias52 falls");
    // High resistance: Vreg collapses despite Vref rising.
    let (_, _, hv, fv) = taps_with(Defect::new(5), 100.0e6, VrefTap::V74);
    assert!(fv < hv - 0.05, "bias starvation: {fv} vs {hv}");
}

/// Df6 raises every tap — Vreg regulates high (pure power defect).
#[test]
fn df6_raises_everything() {
    let (h, f, hv, fv) = taps_with(Defect::new(6), 300.0e3, VrefTap::V74);
    for k in 0..5 {
        assert!(f[k] > h[k] + 0.01, "tap {k} rises");
    }
    assert!(fv > hv + 0.02, "Vreg regulates high");
}

/// Df7 and Df9 both starve the amplifier bias; their voltage impact at
/// equal resistance is comparable (same branch current).
#[test]
fn df7_df9_are_bias_starvation_twins() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let mut v = Vec::new();
    for n in [7u8, 9] {
        let mut c = static_circuit(pvt, VrefTap::V74).unwrap();
        c.inject(Defect::new(n), 30.0e6);
        v.push(c.solve(&l).unwrap().vddcc);
    }
    let healthy = static_circuit(pvt, VrefTap::V74)
        .unwrap()
        .solve(&l)
        .unwrap()
        .vddcc;
    for (i, n) in [7, 9].iter().enumerate() {
        assert!(v[i] < healthy - 0.02, "Df{n} degrades Vreg: {}", v[i]);
    }
}

/// Df10 and Df12 (two sites in one branch) have identical impact.
#[test]
fn df10_df12_identical() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let solve_with = |n: u8| {
        let mut c = static_circuit(pvt, VrefTap::V74).unwrap();
        c.inject(Defect::new(n), 500.0e3);
        c.solve(&l).unwrap().vddcc
    };
    let a = solve_with(10);
    let b = solve_with(12);
    assert!((a - b).abs() < 1e-4, "{a} vs {b}");
}

/// Df16/Df19 drop Vreg by the load current times the defect; Df32's
/// drop appears only behind the defect (vreg stays, vddcc falls).
#[test]
fn output_stage_drops() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let mut c = static_circuit(pvt, VrefTap::V74).unwrap();
    let healthy = c.solve(&l).unwrap();
    c.inject(Defect::new(32), 20.0e3);
    let f32 = c.solve(&l).unwrap();
    // The regulation point (vreg) recovers; the array side (vddcc)
    // drops by I·R.
    assert!(
        (f32.vreg - healthy.vreg).abs() < 0.02,
        "vreg held: {} vs {}",
        f32.vreg,
        healthy.vreg
    );
    assert!(
        f32.vddcc < f32.vreg - 0.01,
        "array rail below the regulation point"
    );
}

/// Df23/Df26 raise MPreg4's conduction through the mirror-gate drop;
/// the amplifier output rises and Vreg falls (the paper's description
/// verbatim).
#[test]
fn df23_mechanism() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let mut c = static_circuit(pvt, VrefTap::V74).unwrap();
    let healthy = c.solve(&l).unwrap();
    c.inject(Defect::new(23), 2.0e6);
    let faulty = c.solve(&l).unwrap();
    assert!(
        faulty.amp_out > healthy.amp_out + 0.02,
        "MPreg1 gate rises: {} vs {}",
        faulty.amp_out,
        healthy.amp_out
    );
    assert!(faulty.vddcc < healthy.vddcc - 0.02, "Vreg degrades");
}

/// Df8's activation delay grows with resistance (the RC of the bias
/// gate line), and a healthy activation hands over without a deep
/// droop.
#[test]
fn df8_delay_mechanism() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let design = RegulatorDesign::lp40nm();
    let run = |ohms: f64| {
        activation_transient(
            &design,
            pvt,
            VrefTap::V74,
            Defect::new(8),
            ohms,
            &l,
            500.0e-6,
            2.0e-6,
        )
        .unwrap()
    };
    let healthy = run(regulator::NO_DEFECT_OHMS);
    let mild = run(100.0e6);
    let slow = run(500.0e6);
    assert!(healthy.min_vddcc() > 0.7);
    // Monotone deepening droop with resistance.
    assert!(mild.min_vddcc() < healthy.min_vddcc() - 0.02);
    assert!(slow.min_vddcc() < mild.min_vddcc() - 0.05);
    assert!(slow.time_below(0.7) > 2.0e-6);
    // But it eventually recovers to regulation (delay, not death).
    assert!((slow.final_vddcc() - 0.74 * 1.1).abs() < 0.05);
}

/// The small-signal line transfer sits at the tap fraction at DC (the
/// reference is ratiometric) and rolls off through the rail
/// capacitance.
#[test]
fn supply_transfer_is_ratiometric_then_filtered() {
    let pvt = pvt_hot();
    let l = load(pvt);
    let mut c = static_circuit(pvt, VrefTap::V70).unwrap();
    let freqs = anasim::ac::log_grid(100.0, 1.0e9, 1);
    let h = c.supply_transfer(&l, &freqs).unwrap();
    let dc = h.first().unwrap().1.abs();
    assert!((dc - 0.70).abs() < 0.03, "DC transfer {dc}");
    let hf = h.last().unwrap().1.abs();
    assert!(hf < dc / 10.0, "high-frequency ripple filtered: {hf}");
    // Monotone non-increasing magnitude (single dominant pole).
    for pair in h.windows(2) {
        assert!(pair[1].1.abs() <= pair[0].1.abs() * 1.01);
    }
}

/// Negligible sites stay negligible even combined with extreme values
/// at two different taps.
#[test]
fn negligible_sites_are_robustly_negligible() {
    let pvt = pvt_hot();
    let l = load(pvt);
    for tap in [VrefTap::V78, VrefTap::V64] {
        let mut c =
            RegulatorCircuit::new(&RegulatorDesign::lp40nm(), pvt, tap, FeedMode::Static).unwrap();
        let healthy = c.solve(&l).unwrap().vddcc;
        for n in [14u8, 17, 18, 21, 24, 25] {
            c.clear_defects();
            c.inject(Defect::new(n), 450.0e6);
            let v = c.solve(&l).unwrap().vddcc;
            assert!(
                (v - healthy).abs() < 5.0e-3,
                "Df{n} at {tap} moved the rail by {}",
                (v - healthy).abs()
            );
        }
    }
}
