//! Electrical topology of the embedded voltage regulator.
//!
//! The circuit follows the paper's Fig. 2/Fig. 5: a polysilicon divider
//! (`R1`–`R6`) generates four reference taps (0.78/0.74/0.70/0.64·VDD)
//! and one bias tap (0.52·VDD); a five-transistor OTA (current mirror
//! `MPreg3`/`MPreg4` over differential pair `MNreg2`/`MNreg3`, tail
//! device `MNreg1`) drives the common-source output PMOS `MPreg1` whose
//! drain is the regulated rail `Vreg`; pull-up `MPreg2` parks the
//! output device off when the regulator is disabled. `Vref` feeds
//! `MNreg2`'s gate, the `Vreg` feedback returns to `MNreg3`'s gate, so
//! the loop settles at `Vreg = Vref`.
//!
//! All 32 resistive-open defect sites of [`crate::defect`] are built
//! into the netlist as series resistances (1 mΩ when absent), so a
//! characterization sweep only touches a parameter table — the
//! amplifier is never re-stamped from scratch.

use anasim::ac::AcAnalysis;
use anasim::complex::Complex;
use anasim::dc::DcAnalysis;
use anasim::devices::mosfet::MosParams;
use anasim::devices::vsource::Waveform;
use anasim::netlist::ParamId;
use anasim::{Netlist, NodeId, SolveScratch};
use process::PvtCondition;
use sram::ArrayLoad;

use crate::defect::Defect;

/// Resistance representing an absent defect, ohms.
pub const NO_DEFECT_OHMS: f64 = 1.0e-3;

/// Resistances above this are treated as full opens, matching the
/// paper's "> 500 MΩ" notation.
pub const OPEN_THRESHOLD_OHMS: f64 = 500.0e6;

/// The four selectable reference taps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VrefTap {
    /// `Vref78` = 0.78·VDD.
    V78,
    /// `Vref74` = 0.74·VDD.
    V74,
    /// `Vref70` = 0.70·VDD.
    V70,
    /// `Vref64` = 0.64·VDD.
    V64,
}

impl VrefTap {
    /// All four taps, highest first.
    pub const ALL: [VrefTap; 4] = [VrefTap::V78, VrefTap::V74, VrefTap::V70, VrefTap::V64];

    /// The tap's fraction of VDD.
    pub fn fraction(self) -> f64 {
        match self {
            VrefTap::V78 => 0.78,
            VrefTap::V74 => 0.74,
            VrefTap::V70 => 0.70,
            VrefTap::V64 => 0.64,
        }
    }

    /// Decodes the `VrefSel<1:0>` primary inputs of the paper's
    /// Vref/Vbias selector (§II.B). The encoding itself is "not
    /// relevant for the study" per the paper; this implementation uses
    /// the natural descending order.
    pub fn from_sel(sel1: bool, sel0: bool) -> VrefTap {
        match (sel1, sel0) {
            (false, false) => VrefTap::V78,
            (false, true) => VrefTap::V74,
            (true, false) => VrefTap::V70,
            (true, true) => VrefTap::V64,
        }
    }

    /// The `VrefSel<1:0>` inputs selecting this tap (inverse of
    /// [`VrefTap::from_sel`]).
    pub fn sel_inputs(self) -> (bool, bool) {
        match self {
            VrefTap::V78 => (false, false),
            VrefTap::V74 => (false, true),
            VrefTap::V70 => (true, false),
            VrefTap::V64 => (true, true),
        }
    }
}

impl std::fmt::Display for VrefTap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.2}*VDD", self.fraction())
    }
}

/// Fraction of VDD at the bias tap.
pub const BIAS_FRACTION: f64 = 0.52;

/// Device sizing and passive values of the regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorDesign {
    /// Total divider resistance `R1+…+R6`, ohms.
    pub divider_total: f64,
    /// Selector mux on-resistance, ohms.
    pub mux_resistance: f64,
    /// Tail bias NMOS `MNreg1`.
    pub bias_nmos: MosParams,
    /// Differential pair NMOS `MNreg2`/`MNreg3`.
    pub diff_nmos: MosParams,
    /// Mirror PMOS `MPreg3`/`MPreg4`.
    pub mirror_pmos: MosParams,
    /// Output stage PMOS `MPreg1`.
    pub output_pmos: MosParams,
    /// Gate pull-up PMOS `MPreg2`.
    pub pullup_pmos: MosParams,
    /// Capacitance of the V_DD_CC rail (array + wiring), farads.
    pub rail_capacitance: f64,
    /// Gate-line capacitance at the amplifier inputs, farads.
    pub gate_capacitance: f64,
}

impl RegulatorDesign {
    /// The modeled 40 nm LP regulator.
    ///
    /// The amplifier devices are long-channel (low λ and DIBL), as is
    /// universal for analog blocks: with minimum-length devices the
    /// mirror's drain-voltage mismatch would induce tens of millivolts
    /// of systematic offset, defeating the "Vreg must equal Vref" spec.
    pub fn lp40nm() -> Self {
        let long = |p: MosParams| MosParams {
            lambda: 0.01,
            dibl: 0.005,
            ..p
        };
        RegulatorDesign {
            divider_total: 500.0e3,
            mux_resistance: 1.0e3,
            bias_nmos: long(MosParams::nmos(4.0e-4, 0.45)),
            diff_nmos: long(MosParams::nmos(4.0e-4, 0.45)),
            mirror_pmos: long(MosParams::pmos(8.0e-4, 0.45)),
            output_pmos: long(MosParams::pmos(1.6e-2, 0.45)),
            pullup_pmos: long(MosParams::pmos(1.0e-5, 0.45)),
            rail_capacitance: 50.0e-12,
            gate_capacitance: 50.0e-15,
        }
    }

    /// The six divider resistors, top (`R1`) to bottom (`R6`), derived
    /// from the tap fractions.
    pub fn divider_resistors(&self) -> [f64; 6] {
        let t = self.divider_total;
        [
            (1.0 - 0.78) * t,
            (0.78 - 0.74) * t,
            (0.74 - 0.70) * t,
            (0.70 - 0.64) * t,
            (0.64 - BIAS_FRACTION) * t,
            BIAS_FRACTION * t,
        ]
    }
}

impl Default for RegulatorDesign {
    fn default() -> Self {
        Self::lp40nm()
    }
}

/// How the amplifier's input lines are fed — static for DC studies, or
/// stepped at `t = 0` for the activation transients of Df8/Df11.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeedMode {
    /// Both `Vbias` and `Vref` come from the divider through the
    /// selector mux (deep-sleep steady state).
    Static,
    /// `Vbias` steps from 0 to its tap value at `t = 0` (regulator
    /// activation); `Vref` is static. Exercises Df8.
    BiasActivation,
    /// `Vref` steps from 0 to its tap value at `t = 0` (selector
    /// break-before-make); `Vbias` is static. Exercises Df11.
    VrefActivation,
}

/// Solved operating point of the regulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RegulatorOp {
    /// Regulated output at the amplifier side of Df32, volts.
    pub vreg: f64,
    /// Core-array rail voltage (after Df32), volts.
    pub vddcc: f64,
    /// Divider tap voltages `[Vref78, Vref74, Vref70, Vref64, Vbias52]`.
    pub taps: [f64; 5],
    /// Error-amplifier tail bias current, amperes.
    pub bias_current: f64,
    /// Total current drawn from the main rail, amperes.
    pub supply_current: f64,
    /// Load current delivered to the array model, amperes.
    pub load_current: f64,
    /// Error-amplifier output node (MPreg1 gate drive), volts.
    pub amp_out: f64,
    /// Differential-pair tail node, volts.
    pub tail: f64,
    /// Reference input actually seen at MNreg2's gate, volts.
    pub vref_seen: f64,
}

/// The regulator netlist with its defect and load parameter handles.
#[derive(Debug)]
pub struct RegulatorCircuit {
    nl: Netlist,
    defects: [ParamId; 32],
    load_res: ParamId,
    vdd_value: f64,
    tap_fraction: f64,
    n_taps: [NodeId; 5],
    n_vreg: NodeId,
    n_vddcc: NodeId,
    n_out: NodeId,
    n_tail: NodeId,
    n_mn1_gate: NodeId,
    n_mn2_gate: NodeId,
    dc: DcAnalysis,
    warm: Option<Vec<f64>>,
    scratch: SolveScratch,
}

impl RegulatorCircuit {
    /// Builds the regulator at the given PVT in deep-sleep mode
    /// (`REGON = 1`), referencing the selected tap.
    ///
    /// # Errors
    ///
    /// Propagates netlist construction failures.
    pub fn new(
        design: &RegulatorDesign,
        pvt: PvtCondition,
        tap: VrefTap,
        feed: FeedMode,
    ) -> Result<Self, anasim::Error> {
        let mut nl = Netlist::new();
        let at = |p: MosParams| pvt.corner.apply(p).at_temp(pvt.temp_c);

        let vdd = nl.node("vdd");
        nl.vsource("VDD", vdd, Netlist::GND, pvt.vdd);

        // -- defect resistors ------------------------------------------------
        // All 32 sites exist from the start; injection = set_param.
        let mut defects: Vec<ParamId> = Vec::with_capacity(32);
        // Placeholder fill; each site overwritten below in order.
        // (Build order must follow defect numbering.)

        // Divider chain with Df1..Df6 in series with R1..R6.
        let rdiv = design.divider_resistors();
        let a1 = nl.node("div_a1");
        let d1 = nl.resistor("Df1", vdd, a1, NO_DEFECT_OHMS)?;
        let n78 = nl.node("vref78");
        nl.resistor("R1", a1, n78, rdiv[0])?;
        let a2 = nl.node("div_a2");
        let d2 = nl.resistor("Df2", n78, a2, NO_DEFECT_OHMS)?;
        let n74 = nl.node("vref74");
        nl.resistor("R2", a2, n74, rdiv[1])?;
        let a3 = nl.node("div_a3");
        let d3_ = nl.resistor("Df3", n74, a3, NO_DEFECT_OHMS)?;
        let n70 = nl.node("vref70");
        nl.resistor("R3", a3, n70, rdiv[2])?;
        let a4 = nl.node("div_a4");
        let d4 = nl.resistor("Df4", n70, a4, NO_DEFECT_OHMS)?;
        let n64 = nl.node("vref64");
        nl.resistor("R4", a4, n64, rdiv[3])?;
        let a5 = nl.node("div_a5");
        let d5 = nl.resistor("Df5", n64, a5, NO_DEFECT_OHMS)?;
        let n52 = nl.node("vbias52");
        nl.resistor("R5", a5, n52, rdiv[4])?;
        // The long poly run to ground carries three open sites (Df6,
        // Df27, Df31): an open anywhere in it raises every tap.
        let a6 = nl.node("div_a6");
        let d6 = nl.resistor("Df6", n52, a6, NO_DEFECT_OHMS)?;
        let a6b = nl.node("div_a6b");
        let d27 = nl.resistor("Df27", a6, a6b, NO_DEFECT_OHMS)?;
        let a6c = nl.node("div_a6c");
        let d31 = nl.resistor("Df31", a6b, a6c, NO_DEFECT_OHMS)?;
        nl.resistor("R6", a6c, Netlist::GND, rdiv[5])?;
        defects.extend([d1, d2, d3_, d4, d5, d6]);

        // -- amplifier supply ------------------------------------------------
        let vdd_amp = nl.node("vdd_amp");
        // Df29 sits here but must be registered at index 28; create the
        // resistor now, remember the handle.
        let d29 = nl.resistor("Df29", vdd, vdd_amp, NO_DEFECT_OHMS)?;

        // -- selector feeds ---------------------------------------------------
        let tap_node = match tap {
            VrefTap::V78 => n78,
            VrefTap::V74 => n74,
            VrefTap::V70 => n70,
            VrefTap::V64 => n64,
        };
        let vref_line = nl.node("vref_line");
        let vbias_line = nl.node("vbias_line");
        match feed {
            FeedMode::Static => {
                nl.resistor("Rmux_ref", tap_node, vref_line, design.mux_resistance)?;
                nl.resistor("Rmux_bias", n52, vbias_line, design.mux_resistance)?;
            }
            FeedMode::BiasActivation => {
                nl.resistor("Rmux_ref", tap_node, vref_line, design.mux_resistance)?;
                nl.vsource_waveform(
                    "Vbias_step",
                    vbias_line,
                    Netlist::GND,
                    Waveform::Pulse {
                        v0: 0.0,
                        v1: BIAS_FRACTION * pvt.vdd,
                        delay: 0.0,
                        rise: 10.0e-9,
                        fall: 10.0e-9,
                        width: 1.0e3, // effectively forever
                    },
                )?;
            }
            FeedMode::VrefActivation => {
                nl.resistor("Rmux_bias", n52, vbias_line, design.mux_resistance)?;
                nl.vsource_waveform(
                    "Vref_step",
                    vref_line,
                    Netlist::GND,
                    Waveform::Pulse {
                        v0: 0.0,
                        v1: tap.fraction() * pvt.vdd,
                        delay: 0.0,
                        rise: 10.0e-9,
                        fall: 10.0e-9,
                        width: 1.0e3,
                    },
                )?;
            }
        }

        // -- error amplifier ---------------------------------------------------
        let tail = nl.node("tail");
        let d3 = nl.node("mirror_d3");
        let out = nl.node("amp_out");

        // Tail bias device MNreg1 with Df7 (drain), Df8 (gate), Df9 (source).
        let mn1_drain = nl.node("mn1_drain");
        let d7 = nl.resistor("Df7", tail, mn1_drain, NO_DEFECT_OHMS)?;
        let mn1_gate = nl.node("mn1_gate");
        let d8 = nl.resistor("Df8", vbias_line, mn1_gate, NO_DEFECT_OHMS)?;
        let mn1_src = nl.node("mn1_src");
        let d9 = nl.resistor("Df9", mn1_src, Netlist::GND, NO_DEFECT_OHMS)?;
        nl.mosfet("MNreg1", mn1_drain, mn1_gate, mn1_src, at(design.bias_nmos))?;
        nl.capacitor("Cg_bias", mn1_gate, Netlist::GND, design.gate_capacitance)?;

        // Input device MNreg2 (gate = Vref). Its drain branch carries
        // half the tail current and reaches the output node through two
        // series segments, Df10 and Df12 — an open in either lifts the
        // output node (and with it MPreg1's gate) by I·R, degrading
        // Vreg, which is exactly the paper's description of both.
        let mn2_mid = nl.node("mn2_mid");
        let d10 = nl.resistor("Df10", out, mn2_mid, NO_DEFECT_OHMS)?;
        let mn2_drain = nl.node("mn2_drain");
        let d12 = nl.resistor("Df12", mn2_mid, mn2_drain, NO_DEFECT_OHMS)?;
        let mn2_gate = nl.node("mn2_gate");
        let d11 = nl.resistor("Df11", vref_line, mn2_gate, NO_DEFECT_OHMS)?;
        nl.mosfet("MNreg2", mn2_drain, mn2_gate, tail, at(design.diff_nmos))?;
        nl.capacitor("Cg_ref", mn2_gate, Netlist::GND, design.gate_capacitance)?;

        // Output gate line: out -[Df24]- MPreg1 gate (no DC current).
        let mp1_gate = nl.node("mp1_gate");
        let d24 = nl.resistor("Df24", out, mp1_gate, NO_DEFECT_OHMS)?;

        // Mirror out PMOS MPreg4: source via Df13+Df28, drain via Df15,
        // gate via Df17.
        let e1 = nl.node("mp4_e1");
        let d13 = nl.resistor("Df13", vdd_amp, e1, NO_DEFECT_OHMS)?;
        let mp4_src = nl.node("mp4_src");
        let d28 = nl.resistor("Df28", e1, mp4_src, NO_DEFECT_OHMS)?;
        let mp4_drain = nl.node("mp4_drain");
        let d15 = nl.resistor("Df15", mp4_drain, out, NO_DEFECT_OHMS)?;
        let mp4_gate = nl.node("mp4_gate");
        let d17 = nl.resistor("Df17", d3, mp4_gate, NO_DEFECT_OHMS)?;
        nl.mosfet(
            "MPreg4",
            mp4_drain,
            mp4_gate,
            mp4_src,
            at(design.mirror_pmos),
        )?;

        // Diode mirror PMOS MPreg3: source via Df23+Df26, gate via Df14.
        let c1 = nl.node("mp3_c1");
        let d23 = nl.resistor("Df23", vdd_amp, c1, NO_DEFECT_OHMS)?;
        let mp3_src = nl.node("mp3_src");
        let d26 = nl.resistor("Df26", c1, mp3_src, NO_DEFECT_OHMS)?;
        let mp3_gate = nl.node("mp3_gate");
        let d14 = nl.resistor("Df14", d3, mp3_gate, NO_DEFECT_OHMS)?;
        nl.mosfet("MPreg3", d3, mp3_gate, mp3_src, at(design.mirror_pmos))?;

        // Feedback device MNreg3: drain via Df22 (mirror reference
        // branch), gate via Df18 (sense line), source via Df20+Df30.
        let mn3_drain = nl.node("mn3_drain");
        let d22 = nl.resistor("Df22", d3, mn3_drain, NO_DEFECT_OHMS)?;
        let vreg = nl.node("vreg");
        let mn3_gate = nl.node("mn3_gate");
        let d18 = nl.resistor("Df18", vreg, mn3_gate, NO_DEFECT_OHMS)?;
        let f1 = nl.node("mn3_f1");
        let mn3_src = nl.node("mn3_src");
        let d20 = nl.resistor("Df20", mn3_src, f1, NO_DEFECT_OHMS)?;
        let d30 = nl.resistor("Df30", f1, tail, NO_DEFECT_OHMS)?;
        nl.mosfet("MNreg3", mn3_drain, mn3_gate, mn3_src, at(design.diff_nmos))?;

        // Pull-up MPreg2: drain via Df25, gate via Df21. Its source
        // ties to the amplifier rail through a milliohm wire stub: a
        // direct tie shares the rail node with the device's
        // source-swap logic and destabilizes the activation-transient
        // Jacobian, while the stub is electrically invisible.
        let mp2_src = nl.node("mp2_src");
        nl.resistor("Rw_mp2", vdd_amp, mp2_src, NO_DEFECT_OHMS)?;
        let mp2_drain = nl.node("mp2_drain");
        let d25 = nl.resistor("Df25", mp2_drain, out, NO_DEFECT_OHMS)?;
        let regonb = nl.node("regonb");
        // REGON = 1 in deep-sleep: the pull-up gate is held at VDD (off).
        nl.vsource("Vregonb", regonb, Netlist::GND, pvt.vdd);
        let mp2_gate = nl.node("mp2_gate");
        let d21 = nl.resistor("Df21", regonb, mp2_gate, NO_DEFECT_OHMS)?;
        nl.mosfet(
            "MPreg2",
            mp2_drain,
            mp2_gate,
            mp2_src,
            at(design.pullup_pmos),
        )?;

        // Output stage MPreg1: source via Df16, drain via Df19.
        let mp1_src = nl.node("mp1_src");
        let d16 = nl.resistor("Df16", vdd_amp, mp1_src, NO_DEFECT_OHMS)?;
        let mp1_drain = nl.node("mp1_drain");
        let d19 = nl.resistor("Df19", mp1_drain, vreg, NO_DEFECT_OHMS)?;
        nl.mosfet(
            "MPreg1",
            mp1_drain,
            mp1_gate,
            mp1_src,
            at(design.output_pmos),
        )?;

        // Array rail behind Df32, with the rail capacitance and load.
        let vddcc = nl.node("vddcc");
        let d32 = nl.resistor("Df32", vreg, vddcc, NO_DEFECT_OHMS)?;
        nl.capacitor("Crail", vddcc, Netlist::GND, design.rail_capacitance)?;
        let load_res = nl.resistor("Rload", vddcc, Netlist::GND, 1.0e12)?;

        // Junction leakage (drain/source diodes to the substrate) —
        // ~0.1 nA/V per node. Physically real, numerically vital: when
        // a defect starves the amplifier its internal nodes are
        // otherwise held only by femtoampere channel leakage, and the
        // operating point becomes ill-conditioned.
        for (name, node) in [
            ("Rjx_out", out),
            ("Rjx_d3", d3),
            ("Rjx_tail", tail),
            ("Rjx_vreg", vreg),
        ] {
            nl.resistor(name, node, Netlist::GND, 1.0e10)?;
        }

        // Assemble the defect handle table in numbering order.
        defects.extend([
            d7, d8, d9, d10, d11, d12, d13, d14, d15, d16, d17, d18, d19, d20, d21, d22, d23, d24,
            d25, d26, d27, d28, d29, d30, d31, d32,
        ]);
        let defects: [ParamId; 32] = defects.try_into().expect("all 32 defect sites registered");

        Ok(RegulatorCircuit {
            nl,
            defects,
            load_res,
            vdd_value: pvt.vdd,
            tap_fraction: tap.fraction(),
            n_taps: [n78, n74, n70, n64, n52],
            n_vreg: vreg,
            n_vddcc: vddcc,
            n_out: out,
            n_tail: tail,
            n_mn1_gate: mn1_gate,
            n_mn2_gate: mn2_gate,
            dc: DcAnalysis::new(),
            warm: None,
            scratch: SolveScratch::new(),
        })
    }

    /// Injects a defect with the given resistance, discarding the warm
    /// start (safe for arbitrary jumps).
    pub fn inject(&mut self, defect: Defect, ohms: f64) {
        self.nl.set_param(self.defects[defect.index()], ohms);
        self.warm = None;
    }

    /// Injects a defect but keeps the previous solution as the warm
    /// start — defect-parameter continuation for resistance sweeps,
    /// where neighbouring points have neighbouring operating points.
    pub fn inject_keep_warm(&mut self, defect: Defect, ohms: f64) {
        self.nl.set_param(self.defects[defect.index()], ohms);
    }

    /// Replaces the DC solver's retry policy (the escalation ladder by
    /// default; [`anasim::RetryPolicy::none`] for ablation runs).
    pub fn set_retry(&mut self, retry: anasim::RetryPolicy) {
        self.dc = self.dc.clone().with_retry(retry);
    }

    /// Enables or disables the DC solver's rank-1/chord fast path.
    /// Bisection sweeps over this circuit change one or two resistor
    /// parameters per solve — exactly the Woodbury-update shape — so
    /// campaigns turn this on; see
    /// [`anasim::NewtonOptions::rank1`] for the accuracy contract.
    pub fn set_rank1(&mut self, rank1: bool) {
        self.dc = self.dc.clone().with_rank1(rank1);
    }

    /// The raw converged state vector of the last successful
    /// [`solve`](RegulatorCircuit::solve) — the warm-start format
    /// [`seed_warm`](RegulatorCircuit::seed_warm) accepts. Node build
    /// order is deterministic for a given design/feed/tap, so the
    /// vector transfers between structurally identical circuit
    /// instances (the campaign-level warm-start cache relies on this).
    pub fn warm_state(&self) -> Option<&[f64]> {
        self.warm.as_deref()
    }

    /// Seeds the next solve from a previously converged state of a
    /// structurally identical circuit, e.g. the healthy operating
    /// point at the same (design, corner, VDD, tap) shared across all
    /// defect searches at one grid condition. Returns `false` (and
    /// leaves the cold start in place) when the vector length does not
    /// match this circuit's unknown count — a seed from a different
    /// topology. A stale-but-plausible seed is safe either way:
    /// [`solve`](RegulatorCircuit::solve) falls back to a cold start
    /// whenever the warm iteration fails.
    pub fn seed_warm(&mut self, state: &[f64]) -> bool {
        if state.len() != self.nl.num_unknowns() {
            return false;
        }
        self.seed_warm_trusted(state);
        true
    }

    /// As [`seed_warm`](RegulatorCircuit::seed_warm), but for callers
    /// that already know the seed came from this very circuit (e.g. a
    /// bisection chain re-applying its own converged probes) — skips
    /// the per-application length re-check and reuses the existing warm
    /// buffer instead of allocating a fresh one.
    pub fn seed_warm_trusted(&mut self, state: &[f64]) {
        debug_assert_eq!(
            state.len(),
            self.nl.num_unknowns(),
            "trusted seed from a different topology"
        );
        match &mut self.warm {
            Some(w) if w.len() == state.len() => w.copy_from_slice(state),
            w => *w = Some(state.to_vec()),
        }
    }

    /// Length of this circuit's unknown vector — the dimension
    /// [`seed_warm`](RegulatorCircuit::seed_warm) validates against.
    pub fn state_len(&self) -> usize {
        self.nl.num_unknowns()
    }

    /// Declares a node that no device touches. The MNA system then
    /// carries an all-zero row — exactly the floating-node singularity
    /// the pre-flight gate exists to catch before the solver does.
    /// This is a fault-injection hook for testing that gate; it has no
    /// modelling use.
    pub fn add_orphan_node(&mut self, name: &str) {
        self.nl.node(name);
        self.warm = None;
    }

    /// Removes every injected defect.
    pub fn clear_defects(&mut self) {
        for id in self.defects {
            self.nl.set_param(id, NO_DEFECT_OHMS);
        }
        self.warm = None;
    }

    /// The expected (fault-free) regulated voltage: tap fraction × VDD.
    pub fn expected_vreg(&self) -> f64 {
        self.tap_fraction * self.vdd_value
    }

    /// The main supply value, volts.
    pub fn vdd(&self) -> f64 {
        self.vdd_value
    }

    /// Node handles used by the transient drivers.
    pub(crate) fn nodes(&self) -> RegulatorNodes {
        RegulatorNodes {
            vreg: self.n_vreg,
            vddcc: self.n_vddcc,
            out: self.n_out,
            tail: self.n_tail,
            mn1_gate: self.n_mn1_gate,
            mn2_gate: self.n_mn2_gate,
            taps: self.n_taps,
        }
    }

    pub(crate) fn netlist(&self) -> &Netlist {
        &self.nl
    }

    pub(crate) fn netlist_mut(&mut self) -> &mut Netlist {
        &mut self.nl
    }

    pub(crate) fn load_param(&self) -> ParamId {
        self.load_res
    }

    /// Solves the DC operating point with the array load attached,
    /// iterating the load linearization to a fixed point.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn solve(&mut self, load: &ArrayLoad) -> Result<RegulatorOp, anasim::Error> {
        // Initial load guess at the expected output.
        let mut v_guess = self.expected_vreg().max(0.05);
        let mut op = None;
        for _ in 0..8 {
            let i_load = load.current(v_guess).max(1.0e-12);
            let r = (v_guess / i_load).clamp(1.0, 1.0e13);
            self.nl.set_param(self.load_res, r);
            let sol = match &self.warm {
                Some(x) => {
                    match self
                        .dc
                        .operating_point_in(&self.nl, Some(x), &mut self.scratch)
                    {
                        Ok(sol) => Ok(sol),
                        Err(_) => {
                            // A stale warm start can drag the iteration onto
                            // a spurious branch near fold points of the
                            // defect parameter; retry cold before giving up.
                            self.warm = None;
                            self.dc
                                .operating_point_in(&self.nl, None, &mut self.scratch)
                        }
                    }
                }
                None => self
                    .dc
                    .operating_point_in(&self.nl, None, &mut self.scratch),
            }?;
            let vddcc = sol.voltage(self.n_vddcc);
            let converged = (vddcc - v_guess).abs() < 1.0e-4;
            match &mut self.warm {
                Some(w) if w.len() == sol.raw().len() => w.copy_from_slice(sol.raw()),
                w => *w = Some(sol.raw().to_vec()),
            }
            let vreg = sol.voltage(self.n_vreg);
            let taps = self.n_taps.map(|n| sol.voltage(n));
            let bias_current = {
                // Tail current read through the Df9 branch voltage: the
                // source resistor carries the full tail current. Probed
                // with try_voltage so a topology variant without the
                // node reads 0 A instead of panicking mid-campaign.
                let v_src = self
                    .nl
                    .find_node("mn1_src")
                    .and_then(|n| sol.try_voltage(n))
                    .unwrap_or(0.0);
                v_src / self.nl.param(self.defects[Defect::new(9).index()])
            };
            let supply_current = -sol
                .branch_current(&self.nl, "VDD")
                .expect("main source has a branch");
            let load_current = vddcc / self.nl.param(self.load_res);
            op = Some(RegulatorOp {
                vreg,
                vddcc,
                taps,
                bias_current,
                supply_current,
                load_current,
                amp_out: sol.voltage(self.n_out),
                tail: sol.voltage(self.n_tail),
                vref_seen: sol.voltage(self.n_mn2_gate),
            });
            if converged {
                break;
            }
            v_guess = vddcc.max(0.01);
        }
        Ok(op.expect("at least one iteration ran"))
    }
}

impl RegulatorCircuit {
    /// Small-signal transfer from the main supply to the array rail
    /// (line ripple transfer). The reference is ratiometric (the
    /// divider tracks V_DD), so the DC value sits near the tap
    /// fraction; the rail capacitance filters high-frequency ripple.
    ///
    /// # Errors
    ///
    /// Propagates solver failures.
    pub fn supply_transfer(
        &mut self,
        load: &ArrayLoad,
        frequencies: &[f64],
    ) -> Result<Vec<(f64, Complex)>, anasim::Error> {
        // Establish the loaded operating point (also sets the load
        // linearization the AC run linearizes around).
        let _ = self.solve(load)?;
        let ac = AcAnalysis::new().run(&self.nl, "VDD", frequencies)?;
        Ok(frequencies
            .iter()
            .copied()
            .zip(ac.transfer(self.n_vddcc))
            .collect())
    }
}

/// Internal node handles shared with the transient driver.
#[derive(Debug, Clone, Copy)]
#[allow(dead_code)] // tail/taps kept for debugging probes
pub(crate) struct RegulatorNodes {
    pub vreg: NodeId,
    pub vddcc: NodeId,
    pub out: NodeId,
    pub tail: NodeId,
    pub mn1_gate: NodeId,
    pub mn2_gate: NodeId,
    pub taps: [NodeId; 5],
}

/// Convenience: a default-design circuit at a PVT point in static DS
/// configuration.
///
/// # Errors
///
/// Propagates netlist construction failures.
pub fn static_circuit(pvt: PvtCondition, tap: VrefTap) -> Result<RegulatorCircuit, anasim::Error> {
    RegulatorCircuit::new(&RegulatorDesign::lp40nm(), pvt, tap, FeedMode::Static)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram::{CellInstance, CellPopulation};

    fn tiny_load(pvt: PvtCondition) -> ArrayLoad {
        let base = CellInstance::symmetric(pvt);
        ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).expect("valid load build")
    }

    #[test]
    fn vrefsel_decoder_roundtrip() {
        for tap in VrefTap::ALL {
            let (s1, s0) = tap.sel_inputs();
            assert_eq!(VrefTap::from_sel(s1, s0), tap);
        }
        // All four codes decode to distinct taps.
        let mut seen = std::collections::HashSet::new();
        for s1 in [false, true] {
            for s0 in [false, true] {
                assert!(seen.insert(VrefTap::from_sel(s1, s0).fraction().to_bits()));
            }
        }
    }

    #[test]
    fn healthy_regulator_tracks_vref() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        for tap in VrefTap::ALL {
            let mut c = static_circuit(pvt, tap).expect("healthy build succeeds");
            let op = c.solve(&load).expect("healthy circuit solves");
            let expected = tap.fraction() * 1.1;
            assert!(
                (op.vreg - expected).abs() < 0.02,
                "{tap}: vreg {} vs expected {expected}",
                op.vreg
            );
            assert!((op.vddcc - op.vreg).abs() < 1e-3);
        }
    }

    #[test]
    fn divider_taps_sit_at_design_fractions() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let op = c.solve(&load).expect("healthy circuit solves");
        let fracs = [0.78, 0.74, 0.70, 0.64, 0.52];
        for (tap_v, frac) in op.taps.iter().zip(fracs) {
            assert!(
                (tap_v - frac * 1.1).abs() < 5e-3,
                "tap at {tap_v} vs {}",
                frac * 1.1
            );
        }
    }

    #[test]
    fn bias_current_is_microamp_scale() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let op = c.solve(&load).expect("healthy circuit solves");
        assert!(
            (0.1e-6..20.0e-6).contains(&op.bias_current),
            "bias current {} A",
            op.bias_current
        );
    }

    #[test]
    fn regulation_holds_across_pvt() {
        use process::{ProcessCorner, PvtGrid};
        let grid = PvtGrid::custom(
            vec![ProcessCorner::FastNSlowP, ProcessCorner::SlowNFastP],
            vec![1.0, 1.2],
            vec![-30.0, 125.0],
        );
        for pvt in grid {
            let load = tiny_load(pvt);
            let mut c = static_circuit(pvt, VrefTap::V70).expect("healthy build succeeds");
            let op = c.solve(&load).expect("healthy circuit solves");
            let expected = 0.70 * pvt.vdd;
            assert!(
                (op.vreg - expected).abs() < 0.03,
                "{pvt}: vreg {} vs {expected}",
                op.vreg
            );
        }
    }

    #[test]
    fn open_df1_starves_every_tap() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        c.inject(Defect::new(1), 1.0e6); // 2x the divider total
        let faulty = c.solve(&load).expect("ladder solves the defective point");
        for (h, f) in healthy.taps.iter().zip(faulty.taps) {
            assert!(f < h * 0.6, "tap {f} vs healthy {h}");
        }
        assert!(faulty.vreg < healthy.vreg - 0.1);
    }

    #[test]
    fn df2_raises_vref78_lowers_the_rest() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        c.inject(Defect::new(2), 200.0e3);
        let faulty = c.solve(&load).expect("ladder solves the defective point");
        assert!(
            faulty.taps[0] > healthy.taps[0] + 0.01,
            "Vref78 should rise"
        );
        for k in 1..5 {
            assert!(
                faulty.taps[k] < healthy.taps[k] - 0.01,
                "tap {k} should fall"
            );
        }
    }

    #[test]
    fn df16_drop_scales_with_load() {
        // A 10 kΩ open in the output stage drops Vreg by I_load · R.
        let pvt = PvtCondition::new(process::ProcessCorner::Typical, 1.1, 125.0);
        let base = CellInstance::symmetric(pvt);
        let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).expect("valid load build");
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        c.inject(Defect::new(16), 20.0e3);
        let faulty = c.solve(&load).expect("ladder solves the defective point");
        // The drop tracks I·R with the (voltage-dependent) faulty load
        // current.
        let expected_drop = faulty.load_current * 20.0e3;
        let drop = healthy.vreg - faulty.vreg;
        assert!(drop > 5e-3, "Df16 must lower Vreg, drop = {drop}");
        assert!(
            (drop - expected_drop).abs() < 0.5 * expected_drop + 5e-3,
            "drop {drop} vs I·R {expected_drop}"
        );
        let _ = CellPopulation {
            pattern: sram::MismatchPattern::symmetric(),
            count: 0,
            stored: sram::StoredBit::One,
        };
    }

    #[test]
    fn negligible_gate_defects_do_not_move_vreg() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        for n in [14u8, 17, 18, 21, 24] {
            c.clear_defects();
            c.inject(Defect::new(n), 100.0e6);
            let faulty = c.solve(&load).expect("ladder solves the defective point");
            assert!(
                (faulty.vreg - healthy.vreg).abs() < 5.0e-3,
                "Df{n} moved vreg by {}",
                (faulty.vreg - healthy.vreg).abs()
            );
        }
    }

    #[test]
    fn power_category_defects_raise_vreg() {
        let pvt = PvtCondition::nominal();
        let load = tiny_load(pvt);
        let mut c = static_circuit(pvt, VrefTap::V70).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        for n in [13u8, 15, 20, 28, 30] {
            c.clear_defects();
            c.inject(Defect::new(n), 100.0e6);
            let faulty = c.solve(&load).expect("ladder solves the defective point");
            assert!(
                faulty.vreg > healthy.vreg + 5.0e-3,
                "Df{n} should raise vreg: {} vs {}",
                faulty.vreg,
                healthy.vreg
            );
        }
    }

    #[test]
    fn drf_category_defects_lower_vreg() {
        let pvt = PvtCondition::new(process::ProcessCorner::Typical, 1.1, 125.0);
        let base = CellInstance::symmetric(pvt);
        let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).expect("valid load build");
        let mut c = static_circuit(pvt, VrefTap::V74).expect("healthy build succeeds");
        let healthy = c.solve(&load).expect("healthy circuit solves");
        for n in [7u8, 9, 10, 12, 16, 19, 23, 26, 29, 32] {
            c.clear_defects();
            c.inject(Defect::new(n), 100.0e6);
            let faulty = c.solve(&load).expect("ladder solves the defective point");
            assert!(
                faulty.vreg < healthy.vreg - 5.0e-3 || faulty.vddcc < healthy.vddcc - 5.0e-3,
                "Df{n} should lower vreg/vddcc: {} / {} vs healthy {} / {}",
                faulty.vreg,
                faulty.vddcc,
                healthy.vreg,
                healthy.vddcc
            );
        }
    }
}
