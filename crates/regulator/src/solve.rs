//! Time-domain analyses of the regulator: the activation transients
//! that make Df8 and Df11 dangerous.
//!
//! Both defects are invisible at DC — they sit in gate lines that carry
//! no steady-state current. Their damage happens when the SRAM *enters*
//! deep-sleep:
//!
//! * **Df8** delays the charging of `MNreg1`'s gate, so the amplifier
//!   stays dead while the power switches are already open; the array
//!   rail, held up only by its capacitance, discharges through the
//!   leakage load and may cross DRV_DS before the regulator takes over.
//! * **Df11** delays the charging of `MNreg2`'s gate toward `Vref`
//!   (the selector breaks before it makes): with the reference input
//!   low the amplifier drives `MPreg1`'s gate high and the rail sags
//!   until the input line recovers.

use anasim::newton::NewtonOptions;
use anasim::transient::TransientAnalysis;
use process::PvtCondition;
use sram::ArrayLoad;

use crate::defect::Defect;
use crate::topology::{FeedMode, RegulatorCircuit, RegulatorDesign, VrefTap};

/// Waveform summary of one activation transient.
#[derive(Debug, Clone)]
pub struct ActivationResult {
    times: Vec<f64>,
    vddcc: Vec<f64>,
}

impl ActivationResult {
    /// The sampled `(time, V_DD_CC)` waveform.
    pub fn samples(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.times.iter().copied().zip(self.vddcc.iter().copied())
    }

    /// Minimum rail voltage over the window.
    pub fn min_vddcc(&self) -> f64 {
        self.vddcc.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Rail voltage at the end of the window.
    pub fn final_vddcc(&self) -> f64 {
        *self.vddcc.last().expect("non-empty waveform")
    }

    /// Total time the rail spent below `level`, seconds.
    pub fn time_below(&self, level: f64) -> f64 {
        let mut total = 0.0;
        for k in 1..self.times.len() {
            if self.vddcc[k] < level {
                total += self.times[k] - self.times[k - 1];
            }
        }
        total
    }
}

/// Runs the deep-sleep activation transient with `defect` injected at
/// `ohms`. Must be called with Df8 (bias activation) or Df11 (Vref
/// activation); other defects have DC mechanisms.
///
/// The initial condition models the instant of the ACT→DS switch: the
/// rail still at full V_DD (the power switches just opened), the
/// stepped gate line fully discharged.
///
/// # Errors
///
/// Propagates solver failures.
///
/// # Panics
///
/// Panics if `defect` is not a transient-mechanism defect.
#[allow(clippy::too_many_arguments)]
pub fn activation_transient(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    ohms: f64,
    load: &ArrayLoad,
    t_stop: f64,
    dt: f64,
) -> Result<ActivationResult, anasim::Error> {
    activation_transient_with_retry(
        design,
        pvt,
        tap,
        defect,
        ohms,
        load,
        t_stop,
        dt,
        anasim::RetryPolicy::default(),
    )
}

/// [`activation_transient`] with an explicit solver retry policy —
/// the variant campaign executors use so their escalation budget is
/// consistent across DC and transient defect mechanisms.
///
/// # Errors
///
/// Propagates solver failures.
///
/// # Panics
///
/// Panics if `defect` is not a transient-mechanism defect.
#[allow(clippy::too_many_arguments)]
pub fn activation_transient_with_retry(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    ohms: f64,
    load: &ArrayLoad,
    t_stop: f64,
    dt: f64,
    retry: anasim::RetryPolicy,
) -> Result<ActivationResult, anasim::Error> {
    assert!(
        defect.is_transient_mechanism(),
        "{defect} is a DC-mechanism defect"
    );
    let feed = match defect.number() {
        8 => FeedMode::BiasActivation,
        11 => FeedMode::VrefActivation,
        _ => unreachable!(),
    };
    let mut circuit = RegulatorCircuit::new(design, pvt, tap, feed)?;
    circuit.inject(defect, ohms);

    // Linearize the load near the expected output; during the droop the
    // resistor model under-estimates the current reduction, which is
    // conservative (pessimistic) for retention.
    let v_expected = circuit.expected_vreg();
    let i_expected = load.current(v_expected).max(1.0e-12);
    let r_load = (v_expected / i_expected).clamp(1.0, 1.0e13);
    {
        let load_param = circuit.load_param();
        circuit.netlist_mut().set_param(load_param, r_load);
    }

    let nodes = circuit.nodes();
    let nl = circuit.netlist();
    let mut x0 = nl.zero_state();
    // Rail capacitance starts at full V_DD.
    nl.set_guess(&mut x0, nodes.vddcc, pvt.vdd);
    nl.set_guess(&mut x0, nodes.vreg, pvt.vdd);
    // The amplifier output parked high (output device off) before
    // activation.
    nl.set_guess(&mut x0, nodes.out, pvt.vdd);
    // The static gate line starts at its tap value; the stepped one at 0
    // (handled by the Pulse source / initial zero guess).
    match feed {
        FeedMode::BiasActivation => {
            nl.set_guess(&mut x0, nodes.mn2_gate, tap.fraction() * pvt.vdd);
        }
        FeedMode::VrefActivation => {
            nl.set_guess(&mut x0, nodes.mn1_gate, 0.52 * pvt.vdd);
        }
        FeedMode::Static => unreachable!(),
    }

    // Slightly relaxed relative tolerance: mid-activation the amplifier
    // crosses its dead zone, where Newton limit-cycles at the 1e-5
    // level; 1e-4 relative (0.1 mV on a 1 V rail) is ample for the
    // retention criterion.
    let options = NewtonOptions {
        reltol: 1.0e-4,
        ..NewtonOptions::default()
    };
    let tr = TransientAnalysis::new(dt, t_stop)
        .with_options(options)
        .with_retry(retry)
        .run_from(nl, x0)?;
    let times = tr.times().to_vec();
    let vddcc = tr.voltage_series(nodes.vddcc);
    Ok(ActivationResult { times, vddcc })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sram::CellInstance;

    fn hot_pvt() -> PvtCondition {
        PvtCondition::new(process::ProcessCorner::Typical, 1.1, 125.0)
    }

    fn load_at(pvt: PvtCondition) -> ArrayLoad {
        let base = CellInstance::symmetric(pvt);
        ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).unwrap()
    }

    #[test]
    fn healthy_activation_settles_at_vref() {
        let pvt = hot_pvt();
        let load = load_at(pvt);
        let r = activation_transient(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(8),
            crate::topology::NO_DEFECT_OHMS,
            &load,
            200.0e-6,
            1.0e-6,
        )
        .unwrap();
        let expected = 0.74 * 1.1;
        assert!(
            (r.final_vddcc() - expected).abs() < 0.03,
            "settled at {} vs {expected}",
            r.final_vddcc()
        );
        // The healthy hand-off never droops anywhere near the worst-case
        // retention voltage.
        assert!(r.min_vddcc() > 0.7, "min rail {}", r.min_vddcc());
    }

    #[test]
    fn df8_delay_scales_with_resistance() {
        let pvt = hot_pvt();
        let load = load_at(pvt);
        let run = |ohms: f64| {
            activation_transient(
                &RegulatorDesign::lp40nm(),
                pvt,
                VrefTap::V74,
                Defect::new(8),
                ohms,
                &load,
                400.0e-6,
                2.0e-6,
            )
            .unwrap()
        };
        let mild = run(1.0e6);
        let severe = run(500.0e6);
        assert!(
            severe.min_vddcc() < mild.min_vddcc() - 0.05,
            "severe {} vs mild {}",
            severe.min_vddcc(),
            mild.min_vddcc()
        );
        assert!(severe.time_below(0.73) > mild.time_below(0.73));
    }

    #[test]
    fn df11_undershoot_recovers() {
        let pvt = hot_pvt();
        let load = load_at(pvt);
        let r = activation_transient(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(11),
            2.0e8, // RC ≈ 10 µs against the 400 µs window
            &load,
            400.0e-6,
            2.0e-6,
        )
        .unwrap();
        // The rail sags while the reference input charges, then
        // recovers: a transient undershoot, exactly the paper's account.
        assert!(r.min_vddcc() < r.final_vddcc() - 0.02);
        assert!(
            (r.final_vddcc() - 0.74 * 1.1).abs() < 0.05,
            "final {}",
            r.final_vddcc()
        );
    }

    #[test]
    #[should_panic(expected = "DC-mechanism")]
    fn dc_defects_rejected() {
        let pvt = hot_pvt();
        let load = load_at(pvt);
        let _ = activation_transient(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(16),
            1.0e3,
            &load,
            1.0e-4,
            1.0e-6,
        );
    }
}
