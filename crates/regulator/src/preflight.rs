//! Regulator-family electrical rules (`ERC100`–`ERC102`) and the
//! pre-flight gate campaign executors call before spending Newton
//! iterations on a grid point.
//!
//! The generic `erc` rules know nothing about this circuit; the rules
//! here encode what a *regulator* netlist must look like: all 32
//! defect sites of [`crate::defect`] present as series resistors,
//! every site electrically reachable, and each site's topology
//! consistent with the category the paper assigns it (a site whose
//! open would sever only a gate line cannot cause anything worse than
//! a transient; a site whose open severs a conduction path cannot be
//! negligible).

use erc::{
    check_model_with, default_rules, ground_reachable, CircuitModel, Diagnostic, EdgeStrength,
    ElementClass, Report, Rule, Severity,
};

use crate::defect::{Defect, DefectCategory};
use crate::topology::RegulatorCircuit;

/// ERC100: every defect site Df1–Df32 must exist as a resistor.
pub struct DefectSitePresent;

impl Rule for DefectSitePresent {
    fn code(&self) -> &'static str {
        "ERC100"
    }
    fn name(&self) -> &'static str {
        "defect-site-present"
    }
    fn summary(&self) -> &'static str {
        "all 32 regulator defect sites (Df1..Df32) exist as series resistors"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        for defect in Defect::all() {
            let name = format!("Df{}", defect.number());
            match model.element(&name) {
                None => report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!("defect site `{name}` is missing from the netlist"),
                    nodes: vec![],
                    devices: vec![name],
                    hint: Some(
                        "characterization sweeps address sites by parameter handle; a \
                         missing site silently mis-targets the sweep"
                            .into(),
                    ),
                }),
                Some(e) if e.class != ElementClass::Resistor => report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "defect site `{name}` is a {}, not a resistor",
                        e.class.label()
                    ),
                    nodes: vec![],
                    devices: vec![name],
                    hint: Some("resistive-open injection requires a resistor".into()),
                }),
                Some(_) => {}
            }
        }
    }
}

/// ERC101: both terminals of every defect site must reach ground.
pub struct DefectSiteReachable;

impl Rule for DefectSiteReachable {
    fn code(&self) -> &'static str {
        "ERC101"
    }
    fn name(&self) -> &'static str {
        "defect-site-reachable"
    }
    fn summary(&self) -> &'static str {
        "every defect site's terminals have a DC path to ground"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let reach = ground_reachable(model, EdgeStrength::Weak, None);
        for defect in Defect::all() {
            let name = format!("Df{}", defect.number());
            let Some(e) = model.element(&name) else {
                continue; // ERC100 owns the missing-site case
            };
            let islanded: Vec<String> = e
                .nodes
                .iter()
                .copied()
                .filter(|&t| t < model.num_nodes() && !reach[t])
                .map(|t| model.node_name(t))
                .collect();
            if !islanded.is_empty() {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Error,
                    message: format!(
                        "defect site `{name}` is electrically unreachable (terminal(s) {})",
                        islanded.join(", ")
                    ),
                    nodes: islanded,
                    devices: vec![name],
                    hint: Some(
                        "a sweep of an unreachable site measures nothing; reconnect \
                         the surrounding branch"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// ERC102: each site's *topology* must be consistent with its expected
/// category. Opening the site completely (removing its resistor) and
/// recomputing connectivity yields the cut — the nodes that lose their
/// ground path:
///
/// * empty cut → a parallel path exists (MOSFET channel, divider
///   chain); the DC consequence is quantitative, so the rule makes no
///   claim;
/// * cut contains conduction terminals → the open severs real current
///   flow, so the expected category must not be
///   [`DefectCategory::Negligible`];
/// * cut touches only gates and capacitors → the open can only float a
///   gate line, so the expected category must be `Negligible` — unless
///   the site is one of the paper's transient mechanisms (Df8/Df11),
///   whose danger is dynamic, not DC.
pub struct DefectCategoryConsistent;

impl Rule for DefectCategoryConsistent {
    fn code(&self) -> &'static str {
        "ERC102"
    }
    fn name(&self) -> &'static str {
        "defect-category-consistent"
    }
    fn summary(&self) -> &'static str {
        "defect-site cut-set topology agrees with its expected category"
    }
    fn check(&self, model: &CircuitModel, report: &mut Report) {
        let reach_with = ground_reachable(model, EdgeStrength::Weak, None);
        for defect in Defect::all() {
            let name = format!("Df{}", defect.number());
            if model.element(&name).is_none() {
                continue; // ERC100 owns it
            }
            let reach_without = ground_reachable(model, EdgeStrength::Weak, Some(&name));
            let cut: Vec<usize> = (1..model.num_nodes())
                .filter(|&i| reach_with[i] && !reach_without[i])
                .collect();
            if cut.is_empty() {
                continue;
            }
            let conductive = cut.iter().any(|&node| {
                model.elements.iter().any(|e| {
                    e.name != name
                        && e.class != ElementClass::Capacitor
                        && e.current_terminals().contains(&node)
                })
            });
            let expected = defect.expected_category();
            let inconsistent = if conductive {
                expected == DefectCategory::Negligible
            } else {
                expected != DefectCategory::Negligible && !defect.is_transient_mechanism()
            };
            if inconsistent {
                report.push(Diagnostic {
                    code: self.code(),
                    severity: Severity::Warning,
                    message: format!(
                        "defect site `{name}`: opening it cuts off {} node(s) ({}), which \
                         contradicts its expected category `{expected}`",
                        cut.len(),
                        if conductive {
                            "carrying DC current"
                        } else {
                            "gate/capacitor only"
                        },
                    ),
                    nodes: cut.iter().map(|&i| model.node_name(i)).collect(),
                    devices: vec![name],
                    hint: Some(
                        "either the netlist mis-wires the site or the expected-category \
                         table is stale"
                            .into(),
                    ),
                });
            }
        }
    }
}

/// The regulator-family rules alone.
pub fn domain_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(DefectSitePresent),
        Box::new(DefectSiteReachable),
        Box::new(DefectCategoryConsistent),
    ]
}

/// The full rule set a regulator netlist is held to: every generic
/// `ERC0xx` rule plus the `ERC1xx` family rules.
pub fn regulator_rules() -> Vec<Box<dyn Rule>> {
    let mut rules = default_rules();
    rules.extend(domain_rules());
    rules
}

impl RegulatorCircuit {
    /// Runs the full regulator rule set over the current netlist
    /// (generic `ERC0xx` plus domain `ERC1xx`) and returns the report.
    pub fn erc_report(&self) -> Report {
        let model = CircuitModel::from_netlist(self.netlist());
        check_model_with(&model, &regulator_rules())
    }

    /// Pre-flight gate: checks the netlist and rejects on any
    /// error-severity finding, before any Newton iteration is spent.
    /// Returns the total diagnostic count (warnings and infos
    /// included) when the netlist is admissible.
    ///
    /// Records `erc.preflight.checked`, `erc.preflight.rejected`, and
    /// `erc.diagnostics` observability counters, so run manifests show
    /// how many points the gate examined and turned away.
    ///
    /// # Errors
    ///
    /// [`anasim::Error::PreflightRejected`] carrying the first
    /// error-severity diagnostic's code and message.
    pub fn preflight(&self) -> Result<usize, anasim::Error> {
        let report = self.erc_report();
        obs::counter_add("erc.preflight.checked", 1);
        obs::counter_add("erc.diagnostics", report.len() as u64);
        match report.reject_on_error() {
            Ok(()) => Ok(report.len()),
            Err(e) => {
                obs::counter_add("erc.preflight.rejected", 1);
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{FeedMode, RegulatorDesign, VrefTap, NO_DEFECT_OHMS};
    use erc::Element;
    use process::PvtCondition;

    fn healthy(feed: FeedMode, tap: VrefTap) -> RegulatorCircuit {
        RegulatorCircuit::new(
            &RegulatorDesign::lp40nm(),
            PvtCondition::nominal(),
            tap,
            feed,
        )
        .expect("healthy build succeeds")
    }

    #[test]
    fn healthy_netlists_pass_every_rule_at_every_tap_and_feed() {
        for tap in VrefTap::ALL {
            for feed in [
                FeedMode::Static,
                FeedMode::BiasActivation,
                FeedMode::VrefActivation,
            ] {
                let c = healthy(feed, tap);
                let report = c.erc_report();
                assert!(
                    report.is_empty(),
                    "{tap} / {feed:?}:\n{}",
                    report.render_text()
                );
                assert!(c.preflight().is_ok());
            }
        }
    }

    #[test]
    fn every_defect_site_passes_at_sweep_resistances() {
        // The whole Table II sweep range must clear pre-flight: a site
        // is a resistor at every resistance, never a disconnect.
        let mut c = healthy(FeedMode::Static, VrefTap::V74);
        for defect in Defect::all() {
            for ohms in [NO_DEFECT_OHMS, 1.0e5, 500.0e6] {
                c.inject(defect, ohms);
                let report = c.erc_report();
                assert!(
                    report.is_empty(),
                    "Df{} at {ohms} Ω:\n{}",
                    defect.number(),
                    report.render_text()
                );
            }
            c.clear_defects();
        }
    }

    #[test]
    fn orphan_node_rejects_with_named_diagnostic() {
        let mut c = healthy(FeedMode::Static, VrefTap::V74);
        c.add_orphan_node("severed_net");
        let report = c.erc_report();
        assert!(report.has_errors());
        let e = c.preflight().expect_err("orphan must reject");
        match &e {
            anasim::Error::PreflightRejected { code, what } => {
                assert_eq!(code, "ERC001");
                assert!(what.contains("severed_net"), "{what}");
            }
            other => panic!("wrong error: {other:?}"),
        }
        assert!(!e.is_retryable(), "no rescue ladder can reconnect a node");
        assert!(e.is_recordable(), "but executors keep going");
    }

    #[test]
    fn erc100_fires_when_a_site_is_missing() {
        let c = healthy(FeedMode::Static, VrefTap::V74);
        let mut model = CircuitModel::from_netlist(c.netlist());
        model.elements.retain(|e| e.name != "Df5");
        let report = check_model_with(&model, &domain_rules());
        assert_eq!(report.codes(), vec!["ERC100"]);
        assert!(report.render_text().contains("Df5"));
    }

    #[test]
    fn erc101_fires_when_a_site_is_islanded() {
        let c = healthy(FeedMode::Static, VrefTap::V74);
        let mut model = CircuitModel::from_netlist(c.netlist());
        // Rewire Df8 entirely onto a node pair nothing else touches —
        // one terminal alone would stay reachable through Df8 itself.
        let island = model.nodes.len();
        model.nodes.push("island".into());
        model.nodes.push("island2".into());
        let df8 = model
            .elements
            .iter_mut()
            .find(|e| e.name == "Df8")
            .expect("Df8 exists");
        df8.nodes = vec![island, island + 1];
        let report = check_model_with(&model, &domain_rules());
        assert!(report.codes().contains(&"ERC101"), "{:?}", report.codes());
        assert!(report.render_text().contains("island"));
    }

    #[test]
    fn erc102_fires_on_conductive_cut_behind_negligible_site() {
        // Synthetic: Df18 (expected Negligible) wired so its open cuts
        // off a current-carrying branch.
        let model = CircuitModel {
            nodes: vec!["0".into(), "a".into(), "b".into(), "c".into()],
            elements: vec![
                Element {
                    name: "V".into(),
                    class: ElementClass::VoltageSource,
                    nodes: vec![1, 0],
                    value: Some(1.0),
                    bad_ref: None,
                },
                Element {
                    name: "Df18".into(),
                    class: ElementClass::Resistor,
                    nodes: vec![1, 2],
                    value: Some(NO_DEFECT_OHMS),
                    bad_ref: None,
                },
                Element {
                    name: "Rload".into(),
                    class: ElementClass::Resistor,
                    nodes: vec![2, 3],
                    value: Some(1.0e3),
                    bad_ref: None,
                },
            ],
        };
        let report = check_model_with(&model, &[Box::new(DefectCategoryConsistent)]);
        assert_eq!(report.codes(), vec!["ERC102"]);
        let d = &report.diagnostics()[0];
        assert_eq!(d.severity, Severity::Warning);
        assert!(d.message.contains("Df18"), "{}", d.message);
        assert!(d.message.contains("carrying DC current"), "{}", d.message);
    }

    #[test]
    fn erc102_fires_on_gate_only_cut_behind_retention_site() {
        // Synthetic: Df16 (expected RetentionFault, not a transient
        // mechanism) wired like a pure gate feed.
        let model = CircuitModel {
            nodes: vec!["0".into(), "a".into(), "g".into()],
            elements: vec![
                Element {
                    name: "V".into(),
                    class: ElementClass::VoltageSource,
                    nodes: vec![1, 0],
                    value: Some(1.0),
                    bad_ref: None,
                },
                Element {
                    name: "Df16".into(),
                    class: ElementClass::Resistor,
                    nodes: vec![1, 2],
                    value: Some(NO_DEFECT_OHMS),
                    bad_ref: None,
                },
                Element {
                    name: "M".into(),
                    class: ElementClass::Mosfet,
                    nodes: vec![1, 2, 0],
                    value: None,
                    bad_ref: None,
                },
            ],
        };
        let report = check_model_with(&model, &[Box::new(DefectCategoryConsistent)]);
        assert_eq!(report.codes(), vec!["ERC102"]);
        assert!(report.render_text().contains("gate/capacitor only"));
    }

    #[test]
    fn rule_catalogue_extends_cleanly() {
        let rules = regulator_rules();
        assert_eq!(rules.len(), 14, "11 generic + 3 domain");
        let codes: Vec<&str> = rules.iter().map(|r| r.code()).collect();
        assert!(codes.contains(&"ERC001"));
        assert!(codes.contains(&"ERC100"));
        assert!(codes.contains(&"ERC102"));
    }
}
