//! Defect characterization: minimum resistance causing a DRF_DS, and
//! measured category classification — the machinery behind the paper's
//! Table II.

use process::PvtCondition;
use sram::drv::StoredBit;
use sram::retention::retention_outcome;
use sram::{ArrayLoad, CellInstance};

use crate::defect::{Defect, DefectCategory};
use crate::solve::activation_transient_with_retry;
use crate::topology::{FeedMode, RegulatorCircuit, RegulatorDesign, VrefTap, OPEN_THRESHOLD_OHMS};

/// Tuning of the characterization sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CharacterizeOptions {
    /// Smallest injected resistance, ohms.
    pub r_min: f64,
    /// Largest injected resistance before the site counts as a full
    /// open, ohms.
    pub r_max: f64,
    /// Coarse scan density (points per decade of resistance).
    pub points_per_decade: usize,
    /// Bisection refinements after the coarse scan.
    pub refine_iters: usize,
    /// Deep-sleep dwell time used by the retention criterion, seconds.
    pub ds_time: f64,
    /// Time step for the Df8/Df11 activation transients, seconds.
    pub transient_dt: f64,
    /// Window simulated for activation transients, seconds.
    pub transient_window: f64,
    /// Solver escalation on non-converged points (the full ladder by
    /// default; [`anasim::RetryPolicy::none`] for ablations).
    pub retry: anasim::RetryPolicy,
    /// Run the static ERC pre-flight gate before the first solve of a
    /// search ([`RegulatorCircuit::preflight`]). On by default: a
    /// structurally broken netlist is then rejected with a named-node
    /// diagnostic instead of burning the whole rescue ladder.
    pub preflight: bool,
    /// Seed every DC probe of a search from the *nearest previously
    /// converged probe* in log-resistance, instead of whatever point
    /// the sweep happened to visit last. The operating point moves
    /// continuously in the defect resistance, so the nearest converged
    /// neighbour is the best available predictor — this is what makes
    /// warm starts pay off inside the bisection ladder. On by default;
    /// turn off to reproduce the plain last-visited continuation.
    pub chain_seeds: bool,
    /// Solve DC probes through the rank-1/chord fast path: chained
    /// bisection steps reuse a held LU factorization
    /// (Woodbury-corrected for the changed defect/load resistances)
    /// instead of refactoring every Newton iteration, and full
    /// factorizations consult a bit-exact cache. Answers stay within
    /// solver tolerance of the dense path — far inside the mV-scale
    /// margins of the retention criterion — so Table II output is
    /// unchanged. On by default; turn off to reproduce the dense
    /// solver exactly.
    pub rank1: bool,
}

impl Default for CharacterizeOptions {
    fn default() -> Self {
        CharacterizeOptions {
            r_min: 100.0,
            r_max: OPEN_THRESHOLD_OHMS,
            points_per_decade: 2,
            refine_iters: 8,
            ds_time: 1.0e-3,
            transient_dt: 4.0e-6,
            transient_window: 1.0e-3,
            retry: anasim::RetryPolicy::ladder(),
            preflight: true,
            chain_seeds: true,
            rank1: true,
        }
    }
}

impl CharacterizeOptions {
    /// Fast options for tests: coarser grid, shorter transients.
    pub fn coarse() -> Self {
        CharacterizeOptions {
            points_per_decade: 1,
            refine_iters: 5,
            transient_dt: 10.0e-6,
            transient_window: 0.5e-3,
            ..Self::default()
        }
    }
}

/// The retention-fault criterion for one stressed-cell population: the
/// paper's DRF_DS definition specialised to the case study under test.
#[derive(Debug, Clone, Copy)]
pub struct DrfCriterion<'a> {
    /// The stressed cell (pattern + PVT) whose retention is at risk.
    pub stressed: &'a CellInstance,
    /// The value that cell struggles to hold.
    pub stored: StoredBit,
    /// Its retention voltage at this PVT (from `sram::drv`).
    pub drv: f64,
}

impl DrfCriterion<'_> {
    /// Whether a steady rail at `vddcc` for `ds_time` seconds flips the
    /// stressed cell.
    pub fn fails_at(&self, vddcc: f64, ds_time: f64) -> bool {
        !retention_outcome(self.stressed, self.stored, vddcc, self.drv, ds_time).retained()
    }
}

/// Result of a minimum-resistance search for one defect.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinResistance {
    /// Smallest resistance that causes a DRF_DS, or `None` when even a
    /// full open does not (the paper's `> 500M` entries).
    pub ohms: Option<f64>,
    /// The rail voltage observed at the failing resistance (diagnostic;
    /// `None` when no failure was found).
    pub vddcc_at_fault: Option<f64>,
    /// `true` when even the defect-free circuit fails the criterion at
    /// this condition — the search is then meaningless (reported with
    /// `ohms = None`) and the condition unusable for testing.
    pub healthy_faulty: bool,
}

/// Whether the defect at `ohms` causes a DRF under the criterion. For
/// DC-mechanism defects this is a loaded DC solve; for Df8/Df11 it runs
/// the activation transient and applies the dwell-time criterion to the
/// time spent below DRV.
///
/// Returns `(faulty, observed_vddcc)`.
///
/// # Errors
///
/// Propagates solver failures.
#[allow(clippy::too_many_arguments)]
pub fn drf_at(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    ohms: f64,
    load: &ArrayLoad,
    criterion: &DrfCriterion<'_>,
    opts: &CharacterizeOptions,
) -> Result<(bool, f64), anasim::Error> {
    if defect.is_transient_mechanism() {
        if opts.preflight {
            preflight_transient_build(design, pvt, tap, defect)?;
        }
        drf_at_transient(design, pvt, tap, defect, ohms, load, criterion, opts)
    } else {
        let mut circuit = RegulatorCircuit::new(design, pvt, tap, FeedMode::Static)?;
        circuit.set_retry(opts.retry);
        circuit.set_rank1(opts.rank1);
        if opts.preflight {
            circuit.preflight()?;
        }
        drf_at_dc(&mut circuit, defect, ohms, load, criterion, opts)
    }
}

/// ERC-checks the netlist an activation transient for `defect` would
/// build. The transient drivers rebuild their circuit per point, so
/// the gate runs once up front on a representative build.
fn preflight_transient_build(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
) -> Result<(), anasim::Error> {
    let feed = if defect.number() == 8 {
        FeedMode::BiasActivation
    } else {
        FeedMode::VrefActivation
    };
    RegulatorCircuit::new(design, pvt, tap, feed)?.preflight()?;
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn drf_at_transient(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    ohms: f64,
    load: &ArrayLoad,
    criterion: &DrfCriterion<'_>,
    opts: &CharacterizeOptions,
) -> Result<(bool, f64), anasim::Error> {
    let wave = activation_transient_with_retry(
        design,
        pvt,
        tap,
        defect,
        ohms,
        load,
        opts.transient_window,
        opts.transient_dt,
        opts.retry,
    )?;
    let v_min = wave.min_vddcc();
    if v_min >= criterion.drv {
        return Ok((false, v_min));
    }
    let dwell = wave.time_below(criterion.drv);
    let faulty = criterion.fails_at(v_min, dwell);
    Ok((faulty, v_min))
}

/// DC variant reusing an existing circuit, so a resistance sweep warm
/// starts each point from the previous solution (defect-parameter
/// continuation).
fn drf_at_dc(
    circuit: &mut RegulatorCircuit,
    defect: Defect,
    ohms: f64,
    load: &ArrayLoad,
    criterion: &DrfCriterion<'_>,
    opts: &CharacterizeOptions,
) -> Result<(bool, f64), anasim::Error> {
    circuit.inject_keep_warm(defect, ohms);
    let op = circuit.solve(load)?;
    Ok((criterion.fails_at(op.vddcc, opts.ds_time), op.vddcc))
}

/// Solves the healthy (defect-free) DC operating point at one grid
/// condition and returns the converged raw state vector — the
/// campaign-level warm-start seed [`min_resistance_seeded`] accepts.
/// Computed once per (design, corner, temperature, VDD, tap) and
/// shared across every defect search at that condition, it replaces
/// the cold DC guess each search would otherwise start from.
///
/// # Errors
///
/// Propagates solver failures (the caller treats a failed seed as
/// "run cold", not as a campaign failure).
pub fn healthy_seed(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    load: &ArrayLoad,
    opts: &CharacterizeOptions,
) -> Result<Vec<f64>, anasim::Error> {
    let _span = obs::span("healthy_seed");
    let mut c = RegulatorCircuit::new(design, pvt, tap, FeedMode::Static)?;
    c.set_retry(opts.retry);
    c.set_rank1(opts.rank1);
    c.solve(load)?;
    Ok(c.warm_state()
        .expect("a successful solve always stores its converged state")
        .to_vec())
}

/// Finds the minimum resistance at which `defect` causes a DRF_DS under
/// the criterion: coarse log-scale scan for the first failing point,
/// then log-scale bisection against the last passing point. Every
/// solve starts from the cold DC guess; see [`min_resistance_seeded`]
/// for the warm-started variant the campaigns use.
///
/// # Errors
///
/// Propagates solver failures.
pub fn min_resistance(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    load: &ArrayLoad,
    criterion: &DrfCriterion<'_>,
    opts: &CharacterizeOptions,
) -> Result<MinResistance, anasim::Error> {
    min_resistance_seeded(design, pvt, tap, defect, load, criterion, opts, None)
}

/// As [`min_resistance`], but the first DC solve of the search seeds
/// Newton from `seed` — a converged state of the *healthy* circuit at
/// the same grid condition (see [`healthy_seed`]) — instead of the
/// cold DC guess. Subsequent bisection steps then continue
/// warm-starting from their neighbour as before. A `None` or
/// wrong-length seed (different topology) degrades silently to the
/// cold start, and a stale seed is rescued by the solver's
/// cold-restart fallback, so seeding is purely an accelerator: it can
/// never turn a solvable search into a failure.
///
/// Transient-mechanism defects (Df8/Df11) ignore the seed: their
/// drivers rebuild a different feed-mode circuit per point.
///
/// # Errors
///
/// Propagates solver failures.
#[allow(clippy::too_many_arguments)]
pub fn min_resistance_seeded(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    load: &ArrayLoad,
    criterion: &DrfCriterion<'_>,
    opts: &CharacterizeOptions,
    seed: Option<&[f64]>,
) -> Result<MinResistance, anasim::Error> {
    let _span = obs::span("min_resistance");
    // DC defects sweep one reused circuit so every point warm-starts
    // from its neighbour (continuation in the defect parameter);
    // transient defects rebuild per point.
    let mut dc_circuit = if defect.is_transient_mechanism() {
        None
    } else {
        let mut c = RegulatorCircuit::new(design, pvt, tap, FeedMode::Static)?;
        c.set_retry(opts.retry);
        c.set_rank1(opts.rank1);
        if let Some(state) = seed {
            if c.seed_warm(state) {
                obs::counter_add("characterize.warm_seed.applied", 1);
            } else {
                obs::counter_add("characterize.warm_seed.rejected", 1);
            }
        }
        Some(c)
    };
    if opts.preflight {
        match dc_circuit.as_ref() {
            Some(c) => {
                c.preflight()?;
            }
            None => preflight_transient_build(design, pvt, tap, defect)?,
        }
    }
    let mut chain = ChainSeeds::new(opts.chain_seeds && dc_circuit.is_some());
    let mut eval = |ohms: f64| -> Result<(bool, f64), anasim::Error> {
        match dc_circuit.as_mut() {
            Some(circuit) => {
                chain.seed(circuit, ohms);
                let out = drf_at_dc(circuit, defect, ohms, load, criterion, opts)?;
                chain.record(circuit, ohms);
                Ok(out)
            }
            None => drf_at_transient(design, pvt, tap, defect, ohms, load, criterion, opts),
        }
    };
    let result = search_min_resistance(opts, &mut eval);
    chain.flush_counters();
    result
}

/// Converged probe states of one minimum-resistance search, keyed by
/// log-resistance, so each new probe can seed Newton from its *nearest*
/// converged neighbour rather than the last-visited point. Counters are
/// accumulated locally and flushed to obs once per search.
struct ChainSeeds {
    enabled: bool,
    /// `(ln ohms, converged state)` per successful probe.
    probes: Vec<(f64, Vec<f64>)>,
    applied: u64,
    cold: u64,
}

impl ChainSeeds {
    fn new(enabled: bool) -> Self {
        ChainSeeds {
            enabled,
            probes: Vec::new(),
            applied: 0,
            cold: 0,
        }
    }

    /// Seeds `circuit` for a probe at `ohms` from the nearest converged
    /// probe, when one exists.
    fn seed(&mut self, circuit: &mut RegulatorCircuit, ohms: f64) {
        if !self.enabled {
            return;
        }
        let target = ohms.ln();
        // `min_by` keeps the first of equally-near probes, so ties
        // resolve deterministically by evaluation order.
        let nearest = self.probes.iter().min_by(|a, b| {
            let da = (a.0 - target).abs();
            let db = (b.0 - target).abs();
            da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
        });
        match nearest {
            Some((_, state)) => {
                // The state came from this very circuit; skip the
                // length re-check the public seeding path pays.
                circuit.seed_warm_trusted(state);
                self.applied += 1;
            }
            None => self.cold += 1,
        }
    }

    /// Records the converged state of the probe at `ohms`.
    fn record(&mut self, circuit: &RegulatorCircuit, ohms: f64) {
        if !self.enabled {
            return;
        }
        if let Some(state) = circuit.warm_state() {
            self.probes.push((ohms.ln(), state.to_vec()));
        }
    }

    fn flush_counters(&self) {
        if !self.enabled {
            return;
        }
        obs::counter_add("characterize.chain_seed.applied", self.applied);
        obs::counter_add("characterize.chain_seed.cold", self.cold);
    }
}

/// The scan-then-bisect skeleton shared by every minimum-resistance
/// search: healthy sanity probe, coarse log-scale scan for the first
/// failing point, then log-scale bisection against the last passing
/// point. `eval` answers "does the defect at this resistance cause a
/// DRF, and what rail voltage was observed".
fn search_min_resistance(
    opts: &CharacterizeOptions,
    eval: &mut dyn FnMut(f64) -> Result<(bool, f64), anasim::Error>,
) -> Result<MinResistance, anasim::Error> {
    // Sanity: a condition where the healthy circuit already fails the
    // criterion cannot characterize a defect.
    let (healthy_fails, _) = eval(crate::topology::NO_DEFECT_OHMS)?;
    if healthy_fails {
        return Ok(MinResistance {
            ohms: None,
            vddcc_at_fault: None,
            healthy_faulty: true,
        });
    }
    let decades = (opts.r_max / opts.r_min).log10();
    let steps = (decades * opts.points_per_decade as f64).ceil() as usize;
    let mut last_good = opts.r_min / 10.0;
    let mut first_bad: Option<(f64, f64)> = None;
    for k in 0..=steps {
        let r = opts.r_min * 10f64.powf(k as f64 / opts.points_per_decade as f64);
        let r = r.min(opts.r_max);
        let (faulty, v) = eval(r)?;
        if faulty {
            first_bad = Some((r, v));
            break;
        }
        last_good = r;
        if r >= opts.r_max {
            break;
        }
    }
    let Some((mut bad_r, mut bad_v)) = first_bad else {
        return Ok(MinResistance {
            ohms: None,
            vddcc_at_fault: None,
            healthy_faulty: false,
        });
    };
    // Log-scale bisection.
    let mut good_r = last_good;
    for _ in 0..opts.refine_iters {
        let mid = (good_r.ln() + bad_r.ln()).mul_add(0.5, 0.0).exp();
        let (faulty, v) = eval(mid)?;
        if faulty {
            bad_r = mid;
            bad_v = v;
        } else {
            good_r = mid;
        }
    }
    Ok(MinResistance {
        ohms: Some(bad_r),
        vddcc_at_fault: Some(bad_v),
        healthy_faulty: false,
    })
}

/// Classifies a defect's impact at one tap by scanning several
/// resistances (a defect can raise the rail at moderate resistance and
/// collapse it at a full open — the paper's Df2–Df5 "both" behaviour)
/// and comparing the rail against the fault-free value.
///
/// # Errors
///
/// Propagates solver failures.
pub fn classify_at_tap(
    design: &RegulatorDesign,
    pvt: PvtCondition,
    tap: VrefTap,
    defect: Defect,
    load: &ArrayLoad,
    opts: &CharacterizeOptions,
) -> Result<DefectCategory, anasim::Error> {
    /// Rail moves smaller than this count as "no effect", volts.
    const MARGIN: f64 = 0.01;
    let _span = obs::span("classify_at_tap");
    let healthy = {
        let mut c = RegulatorCircuit::new(design, pvt, tap, FeedMode::Static)?;
        c.set_retry(opts.retry);
        c.set_rank1(opts.rank1);
        c.solve(load)?.vddcc
    };
    let probe = |ohms: f64| -> Result<f64, anasim::Error> {
        if defect.is_transient_mechanism() {
            Ok(activation_transient_with_retry(
                design,
                pvt,
                tap,
                defect,
                ohms,
                load,
                opts.transient_window,
                opts.transient_dt,
                opts.retry,
            )?
            .min_vddcc())
        } else {
            let mut c = RegulatorCircuit::new(design, pvt, tap, FeedMode::Static)?;
            c.set_retry(opts.retry);
            c.set_rank1(opts.rank1);
            c.inject(defect, ohms);
            Ok(c.solve(load)?.vddcc)
        }
    };
    let mut raises = false;
    let mut lowers = false;
    for ohms in [1.0e4, 1.0e5, 1.0e6, 1.0e7, opts.r_max] {
        let v = probe(ohms)?;
        raises |= v > healthy + MARGIN;
        lowers |= v < healthy - MARGIN;
    }
    Ok(match (lowers, raises) {
        (true, true) => DefectCategory::Mixed,
        (true, false) => DefectCategory::RetentionFault,
        (false, true) => DefectCategory::IncreasedPower,
        (false, false) => DefectCategory::Negligible,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use process::ProcessCorner;
    use sram::MismatchPattern;
    use sram::{CellTransistor, DrvOptions};

    fn setup() -> (PvtCondition, ArrayLoad, CellInstance, f64) {
        // CS2-like stressed cell at the hot fs corner.
        let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.0, 125.0);
        let pattern = MismatchPattern::symmetric()
            .with(CellTransistor::MPcc1, process::Sigma(-3.0))
            .with(CellTransistor::MNcc1, process::Sigma(-3.0));
        let stressed = CellInstance::with_pattern(pattern, pvt);
        let drv = sram::drv_ds(&stressed, StoredBit::One, &DrvOptions::coarse())
            .unwrap()
            .drv;
        let base = CellInstance::symmetric(pvt);
        let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7).unwrap();
        (pvt, load, stressed, drv)
    }

    #[test]
    fn df16_has_finite_min_resistance() {
        let (pvt, load, stressed, drv) = setup();
        let criterion = DrfCriterion {
            stressed: &stressed,
            stored: StoredBit::One,
            drv,
        };
        let opts = CharacterizeOptions::coarse();
        let r = min_resistance(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(16),
            &load,
            &criterion,
            &opts,
        )
        .unwrap();
        let ohms = r.ohms.expect("Df16 must cause DRFs");
        assert!(
            (100.0..100.0e6).contains(&ohms),
            "min resistance {ohms} out of plausible range"
        );
        assert!(r.vddcc_at_fault.unwrap() < drv);
    }

    #[test]
    fn min_resistance_monotone_between_bracketing_points() {
        // The value returned must actually bracket: below it no DRF, at
        // it DRF.
        let (pvt, load, stressed, drv) = setup();
        let criterion = DrfCriterion {
            stressed: &stressed,
            stored: StoredBit::One,
            drv,
        };
        let opts = CharacterizeOptions::coarse();
        let design = RegulatorDesign::lp40nm();
        let r = min_resistance(
            &design,
            pvt,
            VrefTap::V74,
            Defect::new(29),
            &load,
            &criterion,
            &opts,
        )
        .unwrap()
        .ohms
        .expect("Df29 causes DRFs");
        let (below, _) = drf_at(
            &design,
            pvt,
            VrefTap::V74,
            Defect::new(29),
            r / 3.0,
            &load,
            &criterion,
            &opts,
        )
        .unwrap();
        let (at, _) = drf_at(
            &design,
            pvt,
            VrefTap::V74,
            Defect::new(29),
            r,
            &load,
            &criterion,
            &opts,
        )
        .unwrap();
        assert!(!below, "no fault just below the minimum");
        assert!(at, "fault at the minimum");
    }

    #[test]
    fn chained_bisection_runs_on_the_rank1_fast_path() {
        // The whole point of CharacterizeOptions { rank1: true }: a
        // minimum-resistance search perturbs one resistor per probe, so
        // after the cold first factorization the chain should advance
        // on chord steps, not fresh LU factorizations. The obs counters
        // are process-global and other tests may add to them
        // concurrently, so every assertion is a lower bound on the
        // delta — inflation is harmless, absence is the bug.
        let (pvt, load, stressed, drv) = setup();
        let criterion = DrfCriterion {
            stressed: &stressed,
            stored: StoredBit::One,
            drv,
        };
        let opts = CharacterizeOptions::coarse();
        assert!(opts.rank1, "campaigns characterize with the fast path on");
        let counter =
            |snap: &obs::Snapshot, name: &str| snap.counters.get(name).copied().unwrap_or(0);
        let before = obs::snapshot();
        let r = min_resistance(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(16),
            &load,
            &criterion,
            &opts,
        )
        .unwrap();
        assert!(r.ohms.is_some(), "Df16 must cause DRFs");
        let after = obs::snapshot();
        let delta = |name: &str| counter(&after, name) - counter(&before, name);
        assert!(
            delta("rank1.applied") > 0,
            "chained probes never took a chord step: {:?}",
            after.counters
        );
        assert!(
            delta("refactor.cache.miss") + delta("refactor.cache.hit") >= 1,
            "the cold first solve must consult the factorization cache"
        );
    }

    #[test]
    fn negligible_defect_reports_none() {
        let (pvt, load, stressed, drv) = setup();
        let criterion = DrfCriterion {
            stressed: &stressed,
            stored: StoredBit::One,
            drv,
        };
        let opts = CharacterizeOptions::coarse();
        let r = min_resistance(
            &RegulatorDesign::lp40nm(),
            pvt,
            VrefTap::V74,
            Defect::new(18),
            &load,
            &criterion,
            &opts,
        )
        .unwrap();
        assert_eq!(r.ohms, None);
    }

    #[test]
    fn classification_matches_expectations_for_clear_cases() {
        let (pvt, load, _, _) = setup();
        let opts = CharacterizeOptions::coarse();
        let design = RegulatorDesign::lp40nm();
        for (n, want) in [
            (16u8, DefectCategory::RetentionFault),
            (29, DefectCategory::RetentionFault),
            (13, DefectCategory::IncreasedPower),
            (20, DefectCategory::IncreasedPower),
            (18, DefectCategory::Negligible),
            (21, DefectCategory::Negligible),
        ] {
            let got =
                classify_at_tap(&design, pvt, VrefTap::V74, Defect::new(n), &load, &opts).unwrap();
            assert_eq!(got, want, "Df{n}");
        }
    }

    #[test]
    fn criterion_respects_ds_time() {
        let (_, _, stressed, drv) = setup();
        let criterion = DrfCriterion {
            stressed: &stressed,
            stored: StoredBit::One,
            drv,
        };
        // Far below DRV at a hot corner: flips within 1 ms.
        assert!(criterion.fails_at(drv - 0.3, 1.0e-3));
        // Above DRV: never.
        assert!(!criterion.fails_at(drv + 0.01, 10.0));
    }
}
