//! The 32 resistive-open defect sites of the paper's Fig. 5.
//!
//! `Df1`–`Df6` sit in the voltage-source divider (one in series with
//! each of `R1`–`R6`); `Df7`–`Df32` sit in the error amplifier and
//! output stage. The paper's figure is only available as a low-quality
//! bitmap, so the exact wire segments are not recoverable; the sites
//! here were placed so that each defect's *simulated* behaviour matches
//! the paper's per-defect description and the published category map:
//!
//! * 17 defects cause retention faults (Table II rows): Df1–Df5, Df7–
//!   Df12, Df16, Df19, Df23, Df26, Df29, Df32;
//! * 6 gate-line defects are negligible: Df14, Df17, Df18, Df21, Df24,
//!   Df25;
//! * the rest raise `Vreg` and therefore static power (category 1).

use std::fmt;

/// Expected impact class of a defect (the paper's §IV.B taxonomy).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DefectCategory {
    /// Raises `Vreg` above its target: extra static power in DS mode.
    IncreasedPower,
    /// Lowers `Vreg`: data retention faults when it crosses DRV_DS.
    RetentionFault,
    /// Divider defects that cause either, depending on resistance and
    /// the selected `Vref` tap (Df2–Df5).
    Mixed,
    /// No observable effect (series resistance in a line carrying no
    /// DC current).
    Negligible,
}

impl fmt::Display for DefectCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DefectCategory::IncreasedPower => "increased static power",
            DefectCategory::RetentionFault => "data retention fault",
            DefectCategory::Mixed => "power or retention fault",
            DefectCategory::Negligible => "negligible",
        };
        f.write_str(s)
    }
}

/// One of the 32 injected resistive-open defects.
///
/// ```
/// use regulator::{Defect, DefectCategory};
/// let df16 = Defect::new(16);
/// assert_eq!(df16.to_string(), "Df16");
/// assert_eq!(df16.expected_category(), DefectCategory::RetentionFault);
/// assert!(!df16.is_transient_mechanism());
/// assert!(Defect::new(8).is_transient_mechanism());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Defect(u8);

impl Defect {
    /// Creates `Df<n>`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= n <= 32`.
    pub fn new(n: u8) -> Self {
        assert!((1..=32).contains(&n), "defect number {n} out of range");
        Defect(n)
    }

    /// The defect number (1–32).
    pub fn number(self) -> u8 {
        self.0
    }

    /// Zero-based index (for arrays of all 32 sites).
    pub fn index(self) -> usize {
        self.0 as usize - 1
    }

    /// All 32 defects in order.
    pub fn all() -> impl Iterator<Item = Defect> {
        (1..=32).map(Defect)
    }

    /// The defects the paper's Table II characterizes (cause DRFs).
    pub fn table2_rows() -> Vec<Defect> {
        [1, 2, 3, 4, 5, 7, 8, 9, 10, 11, 12, 16, 19, 23, 26, 29, 32]
            .into_iter()
            .map(Defect)
            .collect()
    }

    /// Whether the defect sits in the voltage-source divider.
    pub fn in_voltage_source(self) -> bool {
        self.0 <= 6
    }

    /// Whether this defect's DRF mechanism is time-domain (needs a
    /// transient analysis rather than a DC solve): Df8 delays regulator
    /// activation; Df11 causes an input undershoot at activation.
    pub fn is_transient_mechanism(self) -> bool {
        matches!(self.0, 8 | 11)
    }

    /// Expected category per the paper.
    pub fn expected_category(self) -> DefectCategory {
        match self.0 {
            1 => DefectCategory::RetentionFault,
            2..=5 => DefectCategory::Mixed,
            6 => DefectCategory::IncreasedPower,
            7..=12 => DefectCategory::RetentionFault,
            16 | 19 | 23 | 26 | 29 | 32 => DefectCategory::RetentionFault,
            14 | 17 | 18 | 21 | 24 | 25 => DefectCategory::Negligible,
            13 | 15 | 20 | 22 | 27 | 28 | 30 | 31 => DefectCategory::IncreasedPower,
            _ => unreachable!("defect numbers are validated at construction"),
        }
    }

    /// The paper's description of the mechanism (Table II column
    /// "Description", abridged; our wording for non-Table-II sites).
    pub fn description(self) -> &'static str {
        match self.0 {
            1 => "reduces all reference taps and the bias tap; Vref and Vbias always lower than expected",
            2 => "reduces Vref74/70/64 and Vbias52, increases Vref78; worst with Vref at 0.74/0.70/0.64*VDD",
            3 => "reduces Vref70/64 and Vbias52, increases Vref78/74; worst with Vref at 0.70/0.64*VDD",
            4 => "reduces Vref64 and Vbias52, increases the other taps; worst with Vref at 0.64*VDD",
            5 => "reduces only Vbias52; high resistances choke the amplifier bias current",
            6 => "raises every tap: Vreg regulates high, increasing DS static power",
            7 => "series open in the tail connection: reduces amplifier bias current, Vreg degrades",
            8 => "series open in the bias gate line: delays regulator activation; Vreg may decay to 0 V first",
            9 => "series open in the bias source return: reduces amplifier bias current like Df7",
            10 => "separates the output node from its pull-down: MPreg1 gate floats high, degrading Vreg",
            11 => "series open in the Vref input line: activation undershoot on MNreg2's gate degrades Vreg momentarily",
            12 => "second open site in the output-node pull-down branch: same effect as Df10",
            13 => "weakens MPreg4's supply: output node sags, Vreg regulates high (power)",
            14 => "open in MPreg3's gate tie: no DC current, negligible",
            15 => "weakens MPreg4's pull-up of the output node: Vreg regulates high (power)",
            16 => "voltage drop in MPreg1's supply: Vreg lower by the load-current drop",
            17 => "open in MPreg4's gate line: no DC current, negligible",
            18 => "open in the feedback sense line to MNreg3's gate: no DC current, negligible",
            19 => "voltage drop between MPreg1's drain and the Vreg node: same effect as Df16",
            20 => "degenerates the feedback input MNreg3: the loop settles high (power)",
            21 => "open in MPreg2's gate line: no DC current, negligible",
            22 => "series open in the mirror reference branch: at high resistance the mirror weakens, Vreg settles high (power)",
            23 => "drops MPreg3's source: the mirror gate line sits lower, MPreg4 conducts harder, MPreg1's gate rises, Vreg degrades",
            24 => "open in the final MPreg1 gate segment: no DC current, negligible",
            25 => "series open in MPreg2's drain: only reduces the (tiny) pull-up leak, negligible",
            26 => "second open site in MPreg3's source line: same effect as Df23",
            27 => "second open site in the divider ground run: raises every tap like Df6 (power)",
            28 => "second open site in MPreg4's source line: same effect as Df13 (power)",
            29 => "drops the supply feeding the amplifier and output stage: Vreg necessarily lower",
            30 => "second open site in MNreg3's source line: same effect as Df20 (power)",
            31 => "third open site in the divider ground run: same effect as Df6/Df27 (power)",
            32 => "voltage drop on the V_DD_CC line: array leakage current drops across it in DS mode",
            _ => unreachable!(),
        }
    }
}

impl fmt::Display for Defect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Df{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_two_defects() {
        assert_eq!(Defect::all().count(), 32);
        assert_eq!(Defect::new(1).to_string(), "Df1");
        assert_eq!(Defect::new(32).to_string(), "Df32");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_rejected() {
        let _ = Defect::new(0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn thirty_three_rejected() {
        let _ = Defect::new(33);
    }

    #[test]
    fn category_counts_match_paper() {
        let mut drf = 0;
        let mut negligible = 0;
        let mut power = 0;
        let mut mixed = 0;
        for d in Defect::all() {
            match d.expected_category() {
                DefectCategory::RetentionFault => drf += 1,
                DefectCategory::Negligible => negligible += 1,
                DefectCategory::IncreasedPower => power += 1,
                DefectCategory::Mixed => mixed += 1,
            }
        }
        assert_eq!(drf, 13); // Df1, Df7-12, Df16, Df19, Df23, Df26, Df29, Df32
        assert_eq!(mixed, 4); // Df2-Df5
        assert_eq!(negligible, 6);
        assert_eq!(power, 9); // Df6 + 8 amplifier sites
    }

    #[test]
    fn table2_rows_are_the_17_drf_capable_defects() {
        let rows = Defect::table2_rows();
        assert_eq!(rows.len(), 17);
        for d in &rows {
            assert!(matches!(
                d.expected_category(),
                DefectCategory::RetentionFault | DefectCategory::Mixed
            ));
        }
        // Every DRF-capable defect is in the table.
        for d in Defect::all() {
            let capable = matches!(
                d.expected_category(),
                DefectCategory::RetentionFault | DefectCategory::Mixed
            );
            assert_eq!(capable, rows.contains(&d), "{d}");
        }
    }

    #[test]
    fn transient_mechanisms() {
        assert!(Defect::new(8).is_transient_mechanism());
        assert!(Defect::new(11).is_transient_mechanism());
        assert!(!Defect::new(7).is_transient_mechanism());
    }

    #[test]
    fn divider_membership() {
        for n in 1..=6 {
            assert!(Defect::new(n).in_voltage_source());
        }
        for n in 7..=32 {
            assert!(!Defect::new(n).in_voltage_source());
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_unique_enough() {
        for d in Defect::all() {
            assert!(!d.description().is_empty());
        }
    }
}
