//! `regulator` — the SRAM's embedded voltage regulator with
//! resistive-open defect injection and characterization.
//!
//! Reproduces the paper's §II.B/§IV substrate: the divider-referenced
//! five-transistor OTA regulator ([`topology`]), its 32 resistive-open
//! defect sites ([`defect`]), the activation transients that make Df8
//! and Df11 dangerous ([`solve`]), and the minimum-resistance /
//! category characterization driving Table II ([`characterize`]), plus
//! the regulator-family electrical rules and pre-flight gate
//! ([`preflight`]).
//!
//! # Example: how far can Df16 drift before data is lost?
//!
//! ```no_run
//! use process::PvtCondition;
//! use regulator::{Defect, VrefTap, RegulatorDesign};
//! use regulator::characterize::{min_resistance, CharacterizeOptions, DrfCriterion};
//! use sram::{ArrayLoad, CellInstance, DrvOptions, StoredBit};
//!
//! # fn main() -> Result<(), anasim::Error> {
//! let pvt = PvtCondition::nominal();
//! let stressed = CellInstance::symmetric(pvt); // substitute a case-study cell
//! let drv = sram::drv_ds(&stressed, StoredBit::One, &DrvOptions::default())?.drv;
//! let load = ArrayLoad::build(&stressed, &[], 256 * 1024, 1.3, 9)?;
//! let criterion = DrfCriterion { stressed: &stressed, stored: StoredBit::One, drv };
//! let result = min_resistance(
//!     &RegulatorDesign::lp40nm(), pvt, VrefTap::V74, Defect::new(16),
//!     &load, &criterion, &CharacterizeOptions::default(),
//! )?;
//! println!("Df16 min resistance: {:?}", result.ohms);
//! # Ok(())
//! # }
//! ```

pub mod characterize;
pub mod defect;
pub mod preflight;
pub mod solve;
pub mod topology;

pub use characterize::{
    classify_at_tap, drf_at, healthy_seed, min_resistance, min_resistance_seeded,
    CharacterizeOptions, DrfCriterion, MinResistance,
};
pub use defect::{Defect, DefectCategory};
pub use preflight::{domain_rules, regulator_rules};
pub use solve::{activation_transient, ActivationResult};
pub use topology::{
    static_circuit, FeedMode, RegulatorCircuit, RegulatorDesign, RegulatorOp, VrefTap,
    NO_DEFECT_OHMS, OPEN_THRESHOLD_OHMS,
};
