//! Diagnostic: print the regulator's internal node voltages at the
//! nominal operating point for each tap.

use process::PvtCondition;
use regulator::{static_circuit, VrefTap};
use sram::{ArrayLoad, CellInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let pvt = PvtCondition::nominal();
    let base = CellInstance::symmetric(pvt);
    let load = ArrayLoad::build(&base, &[], 256 * 1024, 1.3, 7)?;
    for tap in VrefTap::ALL {
        let mut c = static_circuit(pvt, tap)?;
        let op = c.solve(&load)?;
        println!(
            "{tap}: vreg={:.4} (exp {:.4}, err {:+.1} mV)  vddcc={:.4}  bias={:.3e}  iload={:.3e}  taps={:?}",
            op.vreg,
            c.expected_vreg(),
            (op.vreg - c.expected_vreg()) * 1e3,
            op.vddcc,
            op.bias_current,
            op.load_current,
            op.taps.map(|v| (v * 1e3).round() / 1e3),
        );
    }
    Ok(())
}
