//! End-to-end prover checks: the full library matrix has no blind
//! spots, agrees with the paper's claim table, and survives replay
//! and a small exhaustive differential against the simulator.

use mprove::{check_paper_claims, differential, prove_library, CleanVerdict};

const DWELL: f64 = 1.0e-3;

#[test]
fn library_matrix_is_fully_decided() {
    let matrix = prove_library(DWELL);
    let counts = matrix.counts();
    assert_eq!(
        counts.unknown,
        0,
        "standard classes must all be decided:\n{}",
        matrix.render_text()
    );
    assert_eq!(matrix.tests.len(), 5);
    assert_eq!(matrix.claims.len(), 5 * 44);
    for test in &matrix.tests {
        assert_eq!(
            test.clean,
            CleanVerdict::ProvenClean,
            "{} must never fail a fault-free memory",
            test.name
        );
    }
}

#[test]
fn matrix_matches_paper_claims() {
    let matrix = prove_library(DWELL);
    let problems = check_paper_claims(&matrix);
    assert!(
        problems.is_empty(),
        "paper claims violated:\n{}",
        problems.join("\n")
    );
}

#[test]
fn replays_agree_with_simulator() {
    let matrix = prove_library(DWELL);
    let tests = march::library::all(DWELL);
    let problems = differential::check_replays(&matrix, &tests);
    assert!(
        problems.is_empty(),
        "replay disagreements:\n{}",
        problems.join("\n")
    );
}

#[test]
fn exhaustive_differential_on_small_geometries() {
    let matrix = prove_library(DWELL);
    let tests = march::library::all(DWELL);
    for (words, bits) in [(1, 8), (2, 8)] {
        for test in &tests {
            let problems = differential::exhaustive(test, &matrix, words, bits);
            assert!(
                problems.is_empty(),
                "{} on {}x{} disagrees with the prover:\n{}",
                test.name(),
                words,
                bits,
                problems.join("\n")
            );
        }
    }
}
