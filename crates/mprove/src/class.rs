//! Position-symbolic fault classes.
//!
//! A [`FaultClass`] is a family of concrete [`march::fault::Fault`]
//! instances closed under everything the prover treats symbolically:
//! the victim's address and bit, the aggressor's relative position
//! (below / above / same word), and — for intra-word pairs — whether
//! the bit pair is separable by the standard data backgrounds. One
//! verdict per class covers every instance in the family; the
//! exhaustive differential harness (`crate::differential`) checks that
//! generalization against the simulation engine instance by instance.

use std::fmt;

use march::fault::{CellRef, Fault, FaultKind, FaultPrimitive};

/// Relative position of the aggressor (or alias target) with respect
/// to the victim in logical address order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Pos {
    /// Aggressor at a lower address than the victim.
    Below,
    /// Aggressor at a higher address than the victim.
    Above,
    /// Aggressor and victim are bits of the same word.
    Intra,
}

/// Separability of an intra-word bit pair under the standard
/// backgrounds (`DataBackground::ALL`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sep {
    /// Some standard background puts opposite data on the two bits.
    Separable,
    /// Every standard background writes both bits the same value
    /// (bit indices congruent modulo 4).
    NonSeparable,
}

/// Whether two bit positions of one word are separable: some standard
/// background (solid / checkerboard / row stripes / pair stripes) puts
/// opposite data on them. Bits are non-separable iff they agree modulo
/// 4 — checkerboard distinguishes bit parity, pair stripes distinguish
/// pair parity, and nothing in the standard family distinguishes more.
pub fn separable(i: usize, j: usize) -> bool {
    (i % 2 != j % 2) || ((i / 2) % 2 != (j / 2) % 2)
}

/// A symbolic fault class: one verdict per (test, class) covers every
/// concrete placement of the class's faults.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultClass {
    /// Stuck-at fault.
    StuckAt {
        /// The stuck value.
        value: bool,
    },
    /// Transition fault (`rising` = the 0→1 write fails).
    Transition {
        /// Which transition fails.
        rising: bool,
    },
    /// Deep-sleep retention loss (DRF_DS).
    Retention {
        /// The value lost during deep-sleep.
        weak: bool,
    },
    /// First write after wake-up lost.
    WakeUpWrite,
    /// Address-decoder aliasing; `target_below` fixes the side of the
    /// physically accessed word.
    AddressAlias {
        /// Whether the aliased-to word sits below the victim address.
        target_below: bool,
    },
    /// Inversion coupling (CFin).
    CouplingInversion {
        /// Aggressor position.
        pos: Pos,
    },
    /// Idempotent coupling (CFid). `sep` is `Some` exactly when
    /// `pos == Pos::Intra`.
    CouplingIdempotent {
        /// Aggressor position.
        pos: Pos,
        /// Intra-word separability (`None` for inter-word pairs).
        sep: Option<Sep>,
        /// Whether the trigger is the rising aggressor write.
        rising: bool,
        /// The value forced onto the victim.
        forces: bool,
    },
    /// State coupling (CFst). `sep` is `Some` exactly when
    /// `pos == Pos::Intra`.
    CouplingState {
        /// Aggressor position.
        pos: Pos,
        /// Intra-word separability (`None` for inter-word pairs).
        sep: Option<Sep>,
        /// The aggressor state that activates the fault.
        when: bool,
        /// The value forced onto the victim while active.
        forces: bool,
    },
}

/// A concrete, minimal representative of a class: geometry plus one
/// placed fault, directly replayable through `march::coverage`.
#[derive(Debug, Clone, PartialEq)]
pub struct Instance {
    /// Memory words.
    pub words: usize,
    /// Bits per word.
    pub bits: usize,
    /// The placed fault.
    pub fault: Fault,
}

fn bit01(b: bool) -> u8 {
    u8::from(b)
}

impl FaultClass {
    /// Every standard class, in the fixed order the claims matrix uses.
    pub fn all_standard() -> Vec<FaultClass> {
        let mut out = Vec::new();
        for value in [false, true] {
            out.push(FaultClass::StuckAt { value });
        }
        for rising in [true, false] {
            out.push(FaultClass::Transition { rising });
        }
        for weak in [false, true] {
            out.push(FaultClass::Retention { weak });
        }
        out.push(FaultClass::WakeUpWrite);
        for target_below in [true, false] {
            out.push(FaultClass::AddressAlias { target_below });
        }
        for pos in [Pos::Below, Pos::Above, Pos::Intra] {
            out.push(FaultClass::CouplingInversion { pos });
        }
        for (pos, sep) in Self::pair_shapes() {
            for rising in [true, false] {
                for forces in [false, true] {
                    out.push(FaultClass::CouplingIdempotent {
                        pos,
                        sep,
                        rising,
                        forces,
                    });
                }
            }
        }
        for (pos, sep) in Self::pair_shapes() {
            for when in [false, true] {
                for forces in [false, true] {
                    out.push(FaultClass::CouplingState {
                        pos,
                        sep,
                        when,
                        forces,
                    });
                }
            }
        }
        out
    }

    fn pair_shapes() -> [(Pos, Option<Sep>); 4] {
        [
            (Pos::Below, None),
            (Pos::Above, None),
            (Pos::Intra, Some(Sep::Separable)),
            (Pos::Intra, Some(Sep::NonSeparable)),
        ]
    }

    /// The stable code identifying the class in text and JSON output.
    pub fn code(&self) -> String {
        fn pos_tag(pos: Pos, sep: Option<Sep>) -> String {
            match (pos, sep) {
                (Pos::Below, _) => "LO".to_string(),
                (Pos::Above, _) => "HI".to_string(),
                (Pos::Intra, None) => "IW".to_string(),
                (Pos::Intra, Some(Sep::Separable)) => "IW_SEP".to_string(),
                (Pos::Intra, Some(Sep::NonSeparable)) => "IW_NSEP".to_string(),
            }
        }
        match self {
            FaultClass::StuckAt { value } => format!("SAF{}", bit01(*value)),
            FaultClass::Transition { rising } => {
                format!("TF_{}", if *rising { "R" } else { "F" })
            }
            FaultClass::Retention { weak } => format!("DRF{}", bit01(*weak)),
            FaultClass::WakeUpWrite => "WUF".to_string(),
            FaultClass::AddressAlias { target_below } => {
                format!("AF_{}", if *target_below { "LO" } else { "HI" })
            }
            FaultClass::CouplingInversion { pos } => {
                format!("CFIN_{}", pos_tag(*pos, None))
            }
            FaultClass::CouplingIdempotent {
                pos,
                sep,
                rising,
                forces,
            } => format!(
                "CFID_{}_{}{}",
                pos_tag(*pos, *sep),
                if *rising { "R" } else { "F" },
                bit01(*forces)
            ),
            FaultClass::CouplingState {
                pos,
                sep,
                when,
                forces,
            } => format!(
                "CFST_{}_S{}F{}",
                pos_tag(*pos, *sep),
                bit01(*when),
                bit01(*forces)
            ),
        }
    }

    /// Human-readable description of the family.
    pub fn describe(&self) -> String {
        fn pos_text(pos: Pos, sep: Option<Sep>) -> &'static str {
            match (pos, sep) {
                (Pos::Below, _) => "aggressor below victim",
                (Pos::Above, _) => "aggressor above victim",
                (Pos::Intra, None) => "intra-word pair",
                (Pos::Intra, Some(Sep::Separable)) => "separable intra-word pair",
                (Pos::Intra, Some(Sep::NonSeparable)) => "non-separable intra-word pair",
            }
        }
        match self {
            FaultClass::StuckAt { value } => format!("stuck-at-{}", bit01(*value)),
            FaultClass::Transition { rising } => format!(
                "transition fault, {} write fails",
                if *rising { "0→1" } else { "1→0" }
            ),
            FaultClass::Retention { weak } => {
                format!("deep-sleep retention loss of a stored {}", bit01(*weak))
            }
            FaultClass::WakeUpWrite => "first write after wake-up lost".to_string(),
            FaultClass::AddressAlias { target_below } => format!(
                "address decoder aliases the word to a {} address",
                if *target_below { "lower" } else { "higher" }
            ),
            FaultClass::CouplingInversion { pos } => {
                format!("inversion coupling, {}", pos_text(*pos, None))
            }
            FaultClass::CouplingIdempotent {
                pos,
                sep,
                rising,
                forces,
            } => format!(
                "idempotent coupling, {}, {} aggressor write forces {}",
                pos_text(*pos, *sep),
                if *rising { "0→1" } else { "1→0" },
                bit01(*forces)
            ),
            FaultClass::CouplingState {
                pos,
                sep,
                when,
                forces,
            } => format!(
                "state coupling, {}, aggressor={} forces {}",
                pos_text(*pos, *sep),
                bit01(*when),
                bit01(*forces)
            ),
        }
    }

    /// Whether the class is an intra-word pair (background-family
    /// analysis applies).
    pub fn is_intra(&self) -> bool {
        matches!(
            self,
            FaultClass::CouplingInversion { pos: Pos::Intra }
                | FaultClass::CouplingIdempotent {
                    pos: Pos::Intra,
                    ..
                }
                | FaultClass::CouplingState {
                    pos: Pos::Intra,
                    ..
                }
        )
    }

    /// The intra-word separability constraint, if any.
    pub fn sep(&self) -> Option<Sep> {
        match self {
            FaultClass::CouplingIdempotent { sep, .. } | FaultClass::CouplingState { sep, .. } => {
                *sep
            }
            _ => None,
        }
    }

    /// The minimal concrete representative the matrix reports and the
    /// differential harness replays.
    pub fn canonical_instance(&self) -> Instance {
        let cell = |addr: usize, bit: usize| CellRef { addr, bit };
        let inter = |below: bool| {
            if below {
                (cell(0, 0), cell(1, 0)) // (aggressor, victim)
            } else {
                (cell(1, 0), cell(0, 0))
            }
        };
        let intra = |sep: Sep| match sep {
            Sep::Separable => (cell(0, 0), cell(0, 1), 2),
            Sep::NonSeparable => (cell(0, 0), cell(0, 4), 8),
        };
        match self {
            FaultClass::StuckAt { value } => Instance {
                words: 1,
                bits: 1,
                fault: Fault::stuck_at(cell(0, 0), *value),
            },
            FaultClass::Transition { rising } => Instance {
                words: 1,
                bits: 1,
                fault: Fault::transition(cell(0, 0), *rising),
            },
            FaultClass::Retention { weak } => Instance {
                words: 1,
                bits: 1,
                fault: Fault::retention_loss(cell(0, 0), *weak),
            },
            FaultClass::WakeUpWrite => Instance {
                words: 1,
                bits: 1,
                fault: Fault::wake_up_write(cell(0, 0)),
            },
            FaultClass::AddressAlias { target_below } => Instance {
                words: 2,
                bits: 1,
                fault: if *target_below {
                    Fault::address_alias(1, 0)
                } else {
                    Fault::address_alias(0, 1)
                },
            },
            FaultClass::CouplingInversion { pos } => match pos {
                Pos::Intra => {
                    let (a, v, bits) = intra(Sep::Separable);
                    Instance {
                        words: 1,
                        bits,
                        fault: Fault::coupling_inversion(a, v),
                    }
                }
                _ => {
                    let (a, v) = inter(*pos == Pos::Below);
                    Instance {
                        words: 2,
                        bits: 1,
                        fault: Fault::coupling_inversion(a, v),
                    }
                }
            },
            FaultClass::CouplingIdempotent {
                pos,
                sep,
                rising,
                forces,
            } => match sep {
                Some(s) => {
                    let (a, v, bits) = intra(*s);
                    Instance {
                        words: 1,
                        bits,
                        fault: Fault::coupling_idempotent(a, v, *rising, *forces),
                    }
                }
                None => {
                    let (a, v) = inter(*pos == Pos::Below);
                    Instance {
                        words: 2,
                        bits: 1,
                        fault: Fault::coupling_idempotent(a, v, *rising, *forces),
                    }
                }
            },
            FaultClass::CouplingState {
                pos,
                sep,
                when,
                forces,
            } => match sep {
                Some(s) => {
                    let (a, v, bits) = intra(*s);
                    Instance {
                        words: 1,
                        bits,
                        fault: Fault::coupling_state(a, v, *when, *forces),
                    }
                }
                None => {
                    let (a, v) = inter(*pos == Pos::Below);
                    Instance {
                        words: 2,
                        bits: 1,
                        fault: Fault::coupling_state(a, v, *when, *forces),
                    }
                }
            },
        }
    }

    /// The ⟨S/F/R⟩ primitive of the class (taken from the canonical
    /// instance; position does not change the primitive).
    pub fn primitive(&self) -> FaultPrimitive {
        self.canonical_instance().fault.kind.primitive()
    }

    /// Maps a concrete fault back to its class. `None` for degenerate
    /// instances outside the standard families (aggressor == victim,
    /// identity alias).
    pub fn classify(fault: &Fault) -> Option<FaultClass> {
        fn pos_of(a: CellRef, v: CellRef) -> Option<Pos> {
            if a.addr == v.addr {
                if a.bit == v.bit {
                    None
                } else {
                    Some(Pos::Intra)
                }
            } else if a.addr < v.addr {
                Some(Pos::Below)
            } else {
                Some(Pos::Above)
            }
        }
        fn sep_of(pos: Pos, a: CellRef, v: CellRef) -> Option<Sep> {
            match pos {
                Pos::Intra => Some(if separable(a.bit, v.bit) {
                    Sep::Separable
                } else {
                    Sep::NonSeparable
                }),
                _ => None,
            }
        }
        let v = fault.victim;
        Some(match &fault.kind {
            FaultKind::StuckAt(value) => FaultClass::StuckAt { value: *value },
            FaultKind::TransitionFault { rising } => FaultClass::Transition { rising: *rising },
            FaultKind::RetentionLoss { weak } => FaultClass::Retention { weak: *weak },
            FaultKind::WakeUpWriteFault => FaultClass::WakeUpWrite,
            FaultKind::AddressAlias { aliases_to } => {
                if *aliases_to == v.addr {
                    return None;
                }
                FaultClass::AddressAlias {
                    target_below: *aliases_to < v.addr,
                }
            }
            FaultKind::CouplingInversion { aggressor } => FaultClass::CouplingInversion {
                pos: pos_of(*aggressor, v)?,
            },
            FaultKind::CouplingIdempotent {
                aggressor,
                rising,
                forces,
            } => {
                let pos = pos_of(*aggressor, v)?;
                FaultClass::CouplingIdempotent {
                    pos,
                    sep: sep_of(pos, *aggressor, v),
                    rising: *rising,
                    forces: *forces,
                }
            }
            FaultKind::CouplingState {
                aggressor,
                when,
                forces,
            } => {
                let pos = pos_of(*aggressor, v)?;
                FaultClass::CouplingState {
                    pos,
                    sep: sep_of(pos, *aggressor, v),
                    when: *when,
                    forces: *forces,
                }
            }
        })
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forty_four_standard_classes_with_unique_codes() {
        let all = FaultClass::all_standard();
        assert_eq!(all.len(), 44);
        let mut codes: Vec<String> = all.iter().map(|c| c.code()).collect();
        codes.sort();
        codes.dedup();
        assert_eq!(codes.len(), 44, "codes must be unique");
    }

    #[test]
    fn canonical_instances_classify_back() {
        for class in FaultClass::all_standard() {
            let inst = class.canonical_instance();
            assert!(
                inst.fault.victim.addr < inst.words && inst.fault.victim.bit < inst.bits,
                "{}: victim out of geometry",
                class.code()
            );
            if let Some(a) = inst.fault.kind.aggressor() {
                assert!(a.addr < inst.words && a.bit < inst.bits);
            }
            assert_eq!(
                FaultClass::classify(&inst.fault).as_ref(),
                Some(&class),
                "{} canonical instance must classify to itself",
                class.code()
            );
        }
    }

    #[test]
    fn separability_matches_mod4() {
        assert!(separable(0, 1));
        assert!(separable(0, 2));
        assert!(separable(0, 3));
        assert!(!separable(0, 4));
        assert!(!separable(1, 5));
        assert!(!separable(3, 7));
        assert!(separable(2, 5));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(FaultClass::StuckAt { value: false }.code(), "SAF0");
        assert_eq!(FaultClass::Transition { rising: true }.code(), "TF_R");
        assert_eq!(FaultClass::Retention { weak: true }.code(), "DRF1");
        assert_eq!(
            FaultClass::AddressAlias { target_below: true }.code(),
            "AF_LO"
        );
        assert_eq!(
            FaultClass::CouplingIdempotent {
                pos: Pos::Intra,
                sep: Some(Sep::NonSeparable),
                rising: true,
                forces: false,
            }
            .code(),
            "CFID_IW_NSEP_R0"
        );
        assert_eq!(
            FaultClass::CouplingState {
                pos: Pos::Below,
                sep: None,
                when: true,
                forces: false,
            }
            .code(),
            "CFST_LO_S1F0"
        );
    }
}
