//! Differential validation of the prover against the concrete
//! simulation in `march::coverage`.
//!
//! Two independent checks:
//!
//! * [`check_replays`] — every Proven-Detected claim's canonical
//!   instance must be detected by the simulator (and the witness must
//!   name a real read of the test), and every Proven-Escaped
//!   counterexample must actually escape when replayed. This validates
//!   the matrix point-wise, including the Escaped side the acceptance
//!   criteria single out.
//! * [`exhaustive`] — enumerate *every* concrete fault a geometry
//!   admits, classify each one back to its fault class, and require
//!   the simulator's verdict to match the prover's for all of them.
//!   This is the placement-quantification check: a single symbolic
//!   verdict claims all N addresses and W bits at once, and this
//!   harness calls the bluff address by address.

use march::background::DataBackground;
use march::coverage;
use march::fault::{CellRef, Fault, FaultKind};
use march::test::MarchTest;

use crate::class::FaultClass;
use crate::prove;
use crate::verdict::{ClaimsMatrix, Verdict};

/// Every concrete fault the fault model admits on a `words × bits`
/// memory: all single-cell faults per cell, all coupling faults per
/// ordered cell pair, all aliases per ordered word pair.
pub fn enumerate_faults(words: usize, bits: usize) -> Vec<Fault> {
    let mut out = Vec::new();
    for addr in 0..words {
        for bit in 0..bits {
            let v = CellRef { addr, bit };
            out.push(Fault::stuck_at(v, false));
            out.push(Fault::stuck_at(v, true));
            out.push(Fault::transition(v, true));
            out.push(Fault::transition(v, false));
            out.push(Fault::retention_loss(v, false));
            out.push(Fault::retention_loss(v, true));
            out.push(Fault::wake_up_write(v));
        }
    }
    for va in 0..words {
        for vb in 0..bits {
            let victim = CellRef { addr: va, bit: vb };
            for aa in 0..words {
                for ab in 0..bits {
                    if (aa, ab) == (va, vb) {
                        continue;
                    }
                    let aggressor = CellRef { addr: aa, bit: ab };
                    out.push(Fault::coupling_inversion(aggressor, victim));
                    for rising in [false, true] {
                        for forces in [false, true] {
                            out.push(Fault::coupling_idempotent(
                                aggressor, victim, rising, forces,
                            ));
                        }
                    }
                    for when in [false, true] {
                        for forces in [false, true] {
                            out.push(Fault::coupling_state(aggressor, victim, when, forces));
                        }
                    }
                }
            }
        }
    }
    for victim in 0..words {
        for target in 0..words {
            if victim != target {
                out.push(Fault::address_alias(victim, target));
            }
        }
    }
    out
}

fn detects_solid(test: &MarchTest, words: usize, bits: usize, fault: &Fault) -> bool {
    coverage::grade(test, words, bits, std::slice::from_ref(fault)).detected == 1
}

fn detects_family(test: &MarchTest, words: usize, bits: usize, fault: &Fault) -> bool {
    coverage::grade_with_backgrounds(
        test,
        words,
        bits,
        std::slice::from_ref(fault),
        &DataBackground::ALL,
    )
    .detected
        == 1
}

/// Replays every claim in the matrix through the simulator: canonical
/// instances of Detected claims must fail in simulation with the
/// witness naming a read the test actually performs; Escaped
/// counterexamples must pass cleanly. Returns one problem string per
/// disagreement.
pub fn check_replays(matrix: &ClaimsMatrix, tests: &[MarchTest]) -> Vec<String> {
    let mut problems = Vec::new();
    for claim in &matrix.claims {
        let Some(test) = tests.iter().find(|t| t.name() == claim.test) else {
            problems.push(format!("{}: test not in library", claim.test));
            continue;
        };
        let inst = &claim.instance;
        let scopes: Vec<(&str, &Verdict)> = std::iter::once(("solid", &claim.solid))
            .chain(claim.family.as_ref().map(|f| ("family", f)))
            .collect();
        for (scope, verdict) in scopes {
            match verdict {
                Verdict::Detected { witness, .. } => {
                    let detected = match scope {
                        "solid" => detects_solid(test, inst.words, inst.bits, &inst.fault),
                        _ => detects_family(test, inst.words, inst.bits, &inst.fault),
                    };
                    if !detected {
                        problems.push(format!(
                            "{} / {} ({scope}): Proven-Detected but the simulator misses {}",
                            claim.test, claim.class, inst.fault
                        ));
                    }
                    let real_read = test.flat_ops().any(|(ei, oi, op)| {
                        ei == witness.element && oi == witness.op_index && op == witness.op
                    });
                    if !(real_read && witness.op.is_read()) {
                        problems.push(format!(
                            "{} / {} ({scope}): witness ({}, {}) {} is not a read the test performs",
                            claim.test, claim.class, witness.element, witness.op_index, witness.op
                        ));
                    }
                }
                Verdict::Escaped { counterexample, .. } => {
                    if counterexample.replay_detects(test) {
                        problems.push(format!(
                            "{} / {} ({scope}): Proven-Escaped but the simulator detects the \
                             counterexample {}",
                            claim.test, claim.class, counterexample.fault
                        ));
                    }
                }
                Verdict::Unknown { .. } => {}
            }
        }
    }
    problems
}

/// Grades every enumerable fault on a `words × bits` memory and
/// requires the simulator's outcome to match the prover's verdict for
/// the fault's class — solid claims against the solid background,
/// family claims (intra-word coupling) against the full background
/// family. Returns one problem string per mismatch.
pub fn exhaustive(
    test: &MarchTest,
    matrix: &ClaimsMatrix,
    words: usize,
    bits: usize,
) -> Vec<String> {
    let mut problems = Vec::new();
    for fault in enumerate_faults(words, bits) {
        let Some(class) = FaultClass::classify(&fault) else {
            continue;
        };
        let Some(claim) = matrix.claim(test.name(), &class.code()) else {
            problems.push(format!(
                "{} / {}: {} has no claim in the matrix",
                test.name(),
                class.code(),
                fault
            ));
            continue;
        };
        if !matches!(claim.solid, Verdict::Unknown { .. }) {
            let simulated = detects_solid(test, words, bits, &fault);
            if simulated != claim.solid.is_detected() {
                problems.push(format!(
                    "{} / {}: solid simulation of {} says {} but the prover says {}",
                    test.name(),
                    class.code(),
                    fault,
                    if simulated { "detected" } else { "escaped" },
                    claim.solid.code()
                ));
            }
        }
        // The family claim is universal over placements, so check the
        // prover's *per-placement* prediction at this exact bit pair
        // and address parity, not just the aggregate verdict.
        if class.is_intra() && claim.family.is_some() {
            let aggressor = match &fault.kind {
                FaultKind::CouplingInversion { aggressor } => *aggressor,
                FaultKind::CouplingIdempotent { aggressor, .. } => *aggressor,
                FaultKind::CouplingState { aggressor, .. } => *aggressor,
                _ => unreachable!("intra-word classes are coupling faults"),
            };
            let predicted = prove::family_instance_detected(
                test,
                &class,
                aggressor.bit,
                fault.victim.bit,
                fault.victim.addr % 2,
                bits,
            );
            if let Some(predicted) = predicted {
                let simulated = detects_family(test, words, bits, &fault);
                if simulated != predicted {
                    problems.push(format!(
                        "{} / {}: family simulation of {} says {} but the prover predicts {}",
                        test.name(),
                        class.code(),
                        fault,
                        if simulated { "detected" } else { "escaped" },
                        if predicted { "detected" } else { "escaped" },
                    ));
                }
            }
        }
    }
    problems
}
