//! The symbolic two-cell march machine.
//!
//! Instead of simulating a concrete memory, the prover runs a march
//! test over at most two modeled cells — the victim and (for pair
//! faults) the aggressor — with values in the [`Sym`] lattice. The
//! machine's transfer functions mirror `march::target::SimpleMemory`
//! operation for operation (store, coupling edge effects, victim-write
//! faults, armed wake-up consumption, state enforcement, in that
//! order), and the *relative* visiting order of the two sites is
//! derived from the layout and the sweep's address order. Because
//! detection only depends on that relative order and on the per-cell
//! expected data (the phases), one run stands for every concrete
//! placement; the exhaustive differential harness checks exactly that
//! claim against the simulator.

use march::element::MarchElement;
use march::op::{AddressOrder, Op};
use march::test::MarchTest;

use crate::sym::Sym;

/// Where the modeled cells sit relative to each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Only the victim is modeled (single-cell faults).
    Single,
    /// Aggressor at a lower address than the victim.
    AggrBelow,
    /// Aggressor at a higher address than the victim.
    AggrAbove,
    /// Aggressor and victim are two bits of one word: every operation
    /// acts on both at once.
    Intra,
    /// Address-decoder alias: two logical addresses map onto one
    /// physical cell, which therefore sees every sweep's operations
    /// twice.
    Alias,
}

/// The per-cell expected-data phase: the bit the background pattern
/// assigns to the cell (`w1` writes the phase, `w0` its complement,
/// reads expect accordingly). Solid backgrounds have both phases
/// `true`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Phases {
    /// Aggressor phase.
    pub a: bool,
    /// Victim phase.
    pub v: bool,
}

impl Phases {
    /// The solid-background phases.
    pub fn solid() -> Phases {
        Phases { a: true, v: true }
    }
}

/// Initial symbolic values of the two cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Init {
    /// Aggressor initial value.
    pub a: Sym,
    /// Victim initial value.
    pub v: Sym,
}

impl Init {
    /// Both cells zero — the simulator's power-on state.
    pub fn zeroed() -> Init {
        Init {
            a: Sym::Zero,
            v: Sym::Zero,
        }
    }
}

/// The fault semantics the machine applies, mirroring
/// `march::fault::FaultKind` with positions abstracted away.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// No fault (used for the never-false-fail proof).
    Clean,
    /// Victim always holds the value.
    StuckAt(bool),
    /// One victim write transition fails.
    Transition {
        /// Whether the 0→1 write is the failing one.
        rising: bool,
    },
    /// Deep-sleep drains the victim's weak value.
    Retention {
        /// The value lost in deep-sleep.
        weak: bool,
    },
    /// The first victim write after each wake-up is lost.
    WakeUpWrite,
    /// Two addresses share one cell (no further misbehaviour).
    Alias,
    /// Any aggressor transition inverts the victim.
    Inversion,
    /// A specific aggressor write transition forces the victim.
    Idempotent {
        /// Whether the trigger is the rising transition.
        rising: bool,
        /// The value forced.
        forces: bool,
    },
    /// While the aggressor holds `when`, the victim is forced.
    State {
        /// The activating aggressor state.
        when: bool,
        /// The value forced.
        forces: bool,
    },
}

/// The cell(s) a visit acts on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Site {
    Aggr,
    Victim,
    Both,
}

/// The detecting observation: which `(element, op)` read failed, on
/// which modeled cell, and what it saw.
#[derive(Debug, Clone, PartialEq)]
pub struct Witness {
    /// Element index in the test.
    pub element: usize,
    /// Op index within the element.
    pub op_index: usize,
    /// The failing read operation.
    pub op: Op,
    /// `"victim"` or `"aggressor"`.
    pub cell: &'static str,
    /// The bit the read expected.
    pub expected: bool,
    /// The bit the faulty machine holds.
    pub observed: bool,
}

/// Outcome of one symbolic run.
#[derive(Debug, Clone, PartialEq)]
pub enum RunResult {
    /// Every read matched: the fault escapes this run.
    Pass,
    /// A read mismatched: the fault is detected, with the witness.
    Fail(Witness),
    /// The abstraction could not decide (e.g. a read or transition on
    /// ⊤). Named so the verdict can report the blind spot.
    Inconclusive(String),
}

/// A run result plus the event chain that led to it.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOutcome {
    /// Pass / fail / inconclusive.
    pub result: RunResult,
    /// Human-readable fault-activation events, in order.
    pub events: Vec<String>,
}

impl RunOutcome {
    /// Whether the run proved detection.
    pub fn failed(&self) -> bool {
        matches!(self.result, RunResult::Fail(_))
    }
}

fn visit_plan(layout: Layout, order: AddressOrder) -> &'static [Site] {
    use AddressOrder::{Any, Down, Up};
    match (layout, order) {
        (Layout::Single, _) => &[Site::Victim],
        (Layout::Intra, _) => &[Site::Both],
        // Both logical addresses hit the same physical cell; the two
        // visits are identical either way around, so order is moot.
        (Layout::Alias, _) => &[Site::Victim, Site::Victim],
        // `Any` executes ascending (see `AddressOrder::addresses`).
        (Layout::AggrBelow, Up | Any) => &[Site::Aggr, Site::Victim],
        (Layout::AggrBelow, Down) => &[Site::Victim, Site::Aggr],
        (Layout::AggrAbove, Up | Any) => &[Site::Victim, Site::Aggr],
        (Layout::AggrAbove, Down) => &[Site::Aggr, Site::Victim],
    }
}

struct Machine {
    sem: Semantics,
    phases: Phases,
    a: Sym,
    v: Sym,
    armed: bool,
    events: Vec<String>,
}

impl Machine {
    /// The value an op with background bit `high` stores into / expects
    /// from a cell with phase `phase`.
    fn data(high: bool, phase: bool) -> bool {
        if high {
            phase
        } else {
            !phase
        }
    }

    fn write(&mut self, ei: usize, op: Op, site: Site) -> Option<RunResult> {
        let high = op.background();
        let val_a = Sym::from_bool(Self::data(high, self.phases.a));
        let val_v = Sym::from_bool(Self::data(high, self.phases.v));
        match site {
            Site::Aggr => {
                let old = self.a;
                self.a = val_a;
                if let Err(stuck) = self.aggressor_edge(ei, old) {
                    return Some(stuck);
                }
            }
            Site::Victim => self.victim_write(ei, val_v),
            Site::Both => {
                // SimpleMemory stores the whole word first, then applies
                // the coupling edge effect on the just-stored victim.
                let old_a = self.a;
                self.a = val_a;
                self.v = val_v;
                if let Err(stuck) = self.aggressor_edge(ei, old_a) {
                    return Some(stuck);
                }
            }
        }
        self.enforce_state(ei);
        None
    }

    fn victim_write(&mut self, ei: usize, val: Sym) {
        let old = self.v;
        match self.sem {
            Semantics::StuckAt(s) => {
                // The stored value is immediately overridden.
                self.v = Sym::from_bool(s);
            }
            Semantics::Transition { rising } => {
                let want = val.as_bool().expect("writes store constants");
                // `old` may be ⊤ only before the first write of a valid
                // test; a blocked transition needs old != want, and from
                // ⊤ both concretizations agree with the outcome below.
                match old.as_bool() {
                    Some(was) if was != want && want == rising => {
                        self.events.push(format!(
                            "element {ei}: TF blocks the {}→{} write, victim keeps {}",
                            u8::from(was),
                            u8::from(want),
                            u8::from(was),
                        ));
                    }
                    Some(_) => self.v = val,
                    None => {
                        // From ⊤: if the cell held `want` the write is a
                        // no-op, if it held `!want` and the transition is
                        // the failing one it keeps `!want` — the result
                        // is only known when the transition direction is
                        // not the failing one.
                        if want == rising {
                            self.v = Sym::Top;
                        } else {
                            self.v = val;
                        }
                    }
                }
            }
            Semantics::WakeUpWrite => {
                if self.armed {
                    self.armed = false;
                    self.events.push(format!(
                        "element {ei}: first write after WUP lost, victim keeps {old}"
                    ));
                } else {
                    self.v = val;
                }
            }
            _ => self.v = val,
        }
    }

    /// Applies coupling effects triggered by an aggressor transition
    /// from `old` to the just-stored `self.a`.
    fn aggressor_edge(&mut self, ei: usize, old: Sym) -> Result<(), RunResult> {
        let triggered = match self.sem {
            Semantics::Inversion | Semantics::Idempotent { .. } => {
                let new = self.a.as_bool().expect("writes store constants");
                match old.as_bool() {
                    Some(was) => was != new,
                    None => {
                        return Err(RunResult::Inconclusive(
                            "aggressor transition from an unknown value".to_string(),
                        ))
                    }
                }
            }
            _ => false,
        };
        if !triggered {
            return Ok(());
        }
        match self.sem {
            Semantics::Inversion => {
                self.v = !self.v;
                self.events.push(format!(
                    "element {ei}: aggressor transition inverts victim to {}",
                    self.v
                ));
            }
            Semantics::Idempotent { rising, forces } => {
                if self.a.is(rising) {
                    self.v = Sym::from_bool(forces);
                    self.events.push(format!(
                        "element {ei}: {} aggressor write forces victim to {}",
                        if rising { "0→1" } else { "1→0" },
                        u8::from(forces),
                    ));
                }
            }
            _ => unreachable!("only coupling semantics trigger"),
        }
        Ok(())
    }

    /// CFst level enforcement — SimpleMemory runs it after *every*
    /// write to any address; the machine's invariant (`a == when`
    /// implies `v == forces` after each modeled write) makes the
    /// unmodeled third-party writes no-ops.
    fn enforce_state(&mut self, ei: usize) {
        if let Semantics::State { when, forces } = self.sem {
            match self.a.as_bool() {
                Some(b) if b == when => {
                    if self.v != Sym::from_bool(forces) {
                        self.events.push(format!(
                            "element {ei}: aggressor holds {} — victim forced to {}",
                            u8::from(when),
                            u8::from(forces),
                        ));
                    }
                    self.v = Sym::from_bool(forces);
                }
                Some(_) => {}
                // Unknown aggressor: the victim may or may not be
                // forced. Sound, but never reached from concrete inits.
                None => self.v = Sym::Top,
            }
        }
    }

    fn read(&mut self, ei: usize, oi: usize, op: Op, site: Site) -> Option<RunResult> {
        let high = op.background();
        let check = |cell: &'static str, value: Sym, phase: bool| -> Option<RunResult> {
            let expected = Self::data(high, phase);
            match value.as_bool() {
                None => Some(RunResult::Inconclusive(format!(
                    "{op} at element {ei} observes an unknown {cell} value"
                ))),
                Some(observed) if observed != expected => Some(RunResult::Fail(Witness {
                    element: ei,
                    op_index: oi,
                    op,
                    cell,
                    expected,
                    observed,
                })),
                Some(_) => None,
            }
        };
        match site {
            Site::Victim => check("victim", self.v, self.phases.v),
            Site::Aggr => check("aggressor", self.a, self.phases.a),
            Site::Both => check("victim", self.v, self.phases.v)
                .or_else(|| check("aggressor", self.a, self.phases.a)),
        }
    }

    fn deep_sleep(&mut self, ei: usize) {
        if let Semantics::Retention { weak } = self.sem {
            let settled = Sym::from_bool(!weak);
            if self.v != settled {
                self.events.push(format!(
                    "element {ei}: deep-sleep drains the stored {} to {}",
                    u8::from(weak),
                    u8::from(!weak),
                ));
            }
            // Exact even from ⊤: a cell holding the weak value flips,
            // one already at !weak stays — both land on !weak.
            self.v = settled;
        }
    }

    fn wake_up(&mut self, ei: usize) {
        if matches!(self.sem, Semantics::WakeUpWrite) {
            self.armed = true;
            self.events
                .push(format!("element {ei}: wake-up arms the lost-write fault"));
        }
    }
}

/// Runs `test` over the symbolic machine. Stops at the first failing
/// read (the witness) or the first abstraction blind spot.
pub fn run(
    test: &MarchTest,
    sem: Semantics,
    layout: Layout,
    phases: Phases,
    init: Init,
) -> RunOutcome {
    let mut m = Machine {
        sem,
        phases,
        a: init.a,
        v: init.v,
        armed: false,
        events: Vec::new(),
    };
    for (ei, element) in test.elements().iter().enumerate() {
        match element {
            MarchElement::DeepSleep { .. } => m.deep_sleep(ei),
            MarchElement::WakeUp => m.wake_up(ei),
            MarchElement::Sweep { order, ops } => {
                for site in visit_plan(layout, *order) {
                    for (oi, op) in ops.iter().enumerate() {
                        let result = if op.is_read() {
                            m.read(ei, oi, *op, *site)
                        } else {
                            m.write(ei, *op, *site)
                        };
                        if let Some(result) = result {
                            return RunOutcome {
                                result,
                                events: m.events,
                            };
                        }
                    }
                }
            }
        }
    }
    RunOutcome {
        result: RunResult::Pass,
        events: m.events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use march::library;

    const DWELL: f64 = 1.0e-3;

    fn solid_zero(test: &MarchTest, sem: Semantics, layout: Layout) -> RunOutcome {
        run(test, sem, layout, Phases::solid(), Init::zeroed())
    }

    #[test]
    fn clean_machine_passes_every_library_test_from_any_state() {
        for test in library::all(DWELL) {
            for phase in [false, true] {
                let out = run(
                    &test,
                    Semantics::Clean,
                    Layout::Single,
                    Phases { a: true, v: phase },
                    Init {
                        a: Sym::Top,
                        v: Sym::Top,
                    },
                );
                assert_eq!(out.result, RunResult::Pass, "{} phase {phase}", test.name());
            }
        }
    }

    #[test]
    fn mlz_detects_retention_and_wakeup() {
        let mlz = library::march_mlz(DWELL);
        for weak in [false, true] {
            let out = solid_zero(&mlz, Semantics::Retention { weak }, Layout::Single);
            assert!(out.failed(), "m-LZ must detect DRF{}", u8::from(weak));
        }
        let out = solid_zero(&mlz, Semantics::WakeUpWrite, Layout::Single);
        assert!(out.failed(), "m-LZ must detect the wake-up write fault");
        // The witness is the r0 closing ME4 (element 3, op 2).
        if let RunResult::Fail(w) = &out.result {
            assert_eq!((w.element, w.op_index), (3, 2));
            assert_eq!(w.op, Op::R0);
        }
    }

    #[test]
    fn lz_misses_drf0_but_catches_drf1() {
        let lz = library::march_lz(DWELL);
        let drf0 = solid_zero(&lz, Semantics::Retention { weak: false }, Layout::Single);
        assert_eq!(
            drf0.result,
            RunResult::Pass,
            "LZ lets the weak-0 DRF escape"
        );
        let drf1 = solid_zero(&lz, Semantics::Retention { weak: true }, Layout::Single);
        assert!(drf1.failed());
    }

    #[test]
    fn mats_plus_transition_coverage_is_state_dependent() {
        let mats = library::mats_plus();
        // Zero-initialised memory: the falling TF escapes MATS+ …
        let out = solid_zero(
            &mats,
            Semantics::Transition { rising: false },
            Layout::Single,
        );
        assert_eq!(out.result, RunResult::Pass);
        // … but a cell that powered up at 1 is caught.
        let out = run(
            &mats,
            Semantics::Transition { rising: false },
            Layout::Single,
            Phases::solid(),
            Init {
                a: Sym::Zero,
                v: Sym::One,
            },
        );
        assert!(out.failed());
        // March C- catches both transitions from any initial state.
        let cminus = library::march_cminus();
        for rising in [false, true] {
            for init in [Sym::Zero, Sym::One] {
                let out = run(
                    &cminus,
                    Semantics::Transition { rising },
                    Layout::Single,
                    Phases::solid(),
                    Init {
                        a: Sym::Zero,
                        v: init,
                    },
                );
                assert!(out.failed(), "C- TF rising={rising} init={init}");
            }
        }
    }

    #[test]
    fn stuck_at_detected_by_every_test_with_event_chain() {
        for test in library::all(DWELL) {
            for value in [false, true] {
                let out = solid_zero(&test, Semantics::StuckAt(value), Layout::Single);
                assert!(out.failed(), "{} SAF{}", test.name(), u8::from(value));
            }
        }
    }

    #[test]
    fn intra_word_state_coupling_needs_opposite_phases() {
        let cminus = library::march_cminus();
        let sem = Semantics::State {
            when: true,
            forces: true,
        };
        // Equal phases (any solid-like background): v tracks a, the
        // forcing is invisible.
        let eq = run(
            &cminus,
            sem,
            Layout::Intra,
            Phases { a: true, v: true },
            Init::zeroed(),
        );
        assert_eq!(eq.result, RunResult::Pass);
        // Opposite phases (checkerboard on a separable pair) expose it.
        let opp = run(
            &cminus,
            sem,
            Layout::Intra,
            Phases { a: true, v: false },
            Init::zeroed(),
        );
        assert!(opp.failed());
    }
}
