//! Verdicts, claims and the claims matrix.
//!
//! Shaped after `erc::Diagnostic`: every verdict carries a stable
//! machine-readable code plus enough structure to either *replay* the
//! detection (the witness chain) or *replay* the escape (a concrete
//! counterexample `march::coverage` grades to a real miss).

use std::fmt;
use std::fmt::Write as _;

use march::background::DataBackground;
use march::coverage;
use march::test::MarchTest;
use obs::Json;

use crate::class::{FaultClass, Instance};
use crate::machine::Witness;

/// A concrete escape configuration the simulation engine can replay:
/// grading `fault` on a `words`×`bits` memory under every listed
/// background must miss it.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// Memory words.
    pub words: usize,
    /// Bits per word.
    pub bits: usize,
    /// The escaping fault.
    pub fault: march::fault::Fault,
    /// The backgrounds the escape survives.
    pub backgrounds: Vec<DataBackground>,
}

impl Counterexample {
    /// Replays the counterexample through `march::coverage`; returns
    /// whether the simulation detects the fault (a *true* escape
    /// replays to `false`).
    pub fn replay_detects(&self, test: &MarchTest) -> bool {
        let report = coverage::grade_with_backgrounds(
            test,
            self.words,
            self.bits,
            std::slice::from_ref(&self.fault),
            &self.backgrounds,
        );
        report.detected == 1
    }
}

/// The prover's answer for one (test, fault class) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum Verdict {
    /// Proven detected for every placement: the witness names the
    /// failing (element, op) read and `chain` the activation events
    /// leading up to it.
    Detected {
        /// The failing read.
        witness: Witness,
        /// Fault-activation events leading to the witness.
        chain: Vec<String>,
        /// Whether the outcome is independent of the cells' initial
        /// values (power-up state).
        state_independent: bool,
    },
    /// Proven escaped: the counterexample replays to a real miss in
    /// the simulator.
    Escaped {
        /// A minimal concrete escape configuration.
        counterexample: Counterexample,
        /// Whether the outcome is independent of the cells' initial
        /// values.
        state_independent: bool,
    },
    /// The abstraction could not decide; `reason` names the blind
    /// spot.
    Unknown {
        /// The named blind spot.
        reason: String,
    },
}

impl Verdict {
    /// Stable lowercase code: `detected` / `escaped` / `unknown`.
    pub fn code(&self) -> &'static str {
        match self {
            Verdict::Detected { .. } => "detected",
            Verdict::Escaped { .. } => "escaped",
            Verdict::Unknown { .. } => "unknown",
        }
    }

    /// Whether this is Proven-Detected.
    pub fn is_detected(&self) -> bool {
        matches!(self, Verdict::Detected { .. })
    }

    /// Whether this is Proven-Escaped.
    pub fn is_escaped(&self) -> bool {
        matches!(self, Verdict::Escaped { .. })
    }

    /// Whether this is Unknown.
    pub fn is_unknown(&self) -> bool {
        matches!(self, Verdict::Unknown { .. })
    }

    /// Whether the verdict holds independent of initial cell values.
    pub fn state_independent(&self) -> Option<bool> {
        match self {
            Verdict::Detected {
                state_independent, ..
            }
            | Verdict::Escaped {
                state_independent, ..
            } => Some(*state_independent),
            Verdict::Unknown { .. } => None,
        }
    }

    fn to_json(&self) -> Json {
        match self {
            Verdict::Detected {
                witness,
                chain,
                state_independent,
            } => Json::obj([
                ("verdict".to_string(), Json::Str("detected".to_string())),
                (
                    "state_independent".to_string(),
                    Json::Bool(*state_independent),
                ),
                (
                    "witness".to_string(),
                    Json::obj([
                        ("element".to_string(), Json::Num(witness.element as f64)),
                        ("op".to_string(), Json::Num(witness.op_index as f64)),
                        ("operation".to_string(), Json::Str(witness.op.to_string())),
                        ("cell".to_string(), Json::Str(witness.cell.to_string())),
                        (
                            "expected".to_string(),
                            Json::Num(f64::from(u8::from(witness.expected))),
                        ),
                        (
                            "observed".to_string(),
                            Json::Num(f64::from(u8::from(witness.observed))),
                        ),
                    ]),
                ),
                (
                    "chain".to_string(),
                    Json::Arr(chain.iter().map(|e| Json::Str(e.clone())).collect()),
                ),
            ]),
            Verdict::Escaped {
                counterexample,
                state_independent,
            } => Json::obj([
                ("verdict".to_string(), Json::Str("escaped".to_string())),
                (
                    "state_independent".to_string(),
                    Json::Bool(*state_independent),
                ),
                (
                    "counterexample".to_string(),
                    Json::obj([
                        ("words".to_string(), Json::Num(counterexample.words as f64)),
                        ("bits".to_string(), Json::Num(counterexample.bits as f64)),
                        (
                            "fault".to_string(),
                            Json::Str(counterexample.fault.to_string()),
                        ),
                        (
                            "backgrounds".to_string(),
                            Json::Arr(
                                counterexample
                                    .backgrounds
                                    .iter()
                                    .map(|b| Json::Str(b.to_string()))
                                    .collect(),
                            ),
                        ),
                    ]),
                ),
            ]),
            Verdict::Unknown { reason } => Json::obj([
                ("verdict".to_string(), Json::Str("unknown".to_string())),
                ("reason".to_string(), Json::Str(reason.clone())),
            ]),
        }
    }

    fn summary_text(&self) -> String {
        match self {
            Verdict::Detected {
                witness,
                state_independent,
                ..
            } => format!(
                "detected (element {} op {} {}{})",
                witness.element,
                witness.op_index,
                witness.op,
                if *state_independent {
                    ""
                } else {
                    ", state-dependent"
                },
            ),
            Verdict::Escaped {
                counterexample,
                state_independent,
            } => format!(
                "escaped  ({} on {}x{}{})",
                counterexample.fault,
                counterexample.words,
                counterexample.bits,
                if *state_independent {
                    ""
                } else {
                    ", state-dependent"
                },
            ),
            Verdict::Unknown { reason } => format!("unknown  ({reason})"),
        }
    }
}

/// The never-false-fail proof for one test on a clean memory.
#[derive(Debug, Clone, PartialEq)]
pub enum CleanVerdict {
    /// Proven to pass on a fault-free memory from any initial state.
    ProvenClean,
    /// The test would fail a good device (a broken test).
    FalseFail {
        /// The spuriously failing read.
        witness: Witness,
    },
    /// The abstraction could not decide.
    Unknown {
        /// The named blind spot.
        reason: String,
    },
}

impl CleanVerdict {
    /// Stable machine-readable code for this verdict.
    pub fn code(&self) -> &'static str {
        match self {
            CleanVerdict::ProvenClean => "proven-clean",
            CleanVerdict::FalseFail { .. } => "false-fail",
            CleanVerdict::Unknown { .. } => "unknown",
        }
    }
}

/// One test's header row in the matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct TestSummary {
    /// Test name.
    pub name: String,
    /// Rendered notation (`Display` without the name prefix).
    pub notation: String,
    /// `(a, b)` of the `aN + b` length formula.
    pub formula: (usize, usize),
    /// The clean-memory proof.
    pub clean: CleanVerdict,
}

/// One (test, fault class) claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// The test name.
    pub test: String,
    /// The fault class.
    pub class: FaultClass,
    /// The class's canonical concrete representative.
    pub instance: Instance,
    /// Verdict under the solid background (the engine's default
    /// grading and the march-notation semantics).
    pub solid: Verdict,
    /// For intra-word classes: verdict under the full standard
    /// background family (`DataBackground::ALL`), quantified over all
    /// bit placements and address parities of the class.
    pub family: Option<Verdict>,
}

/// Verdict counters over an entire matrix (solid + family verdicts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VerdictCounts {
    /// Proven-Detected verdicts.
    pub detected: usize,
    /// Proven-Escaped verdicts.
    pub escaped: usize,
    /// Unknown verdicts.
    pub unknown: usize,
}

/// The full claims matrix for a test library.
#[derive(Debug, Clone, PartialEq)]
pub struct ClaimsMatrix {
    /// DS dwell used to instantiate the library.
    pub dwell: f64,
    /// Per-test summaries (incl. the clean proofs).
    pub tests: Vec<TestSummary>,
    /// All (test, class) claims, tests outer, classes inner, in
    /// `FaultClass::all_standard` order.
    pub claims: Vec<Claim>,
}

impl ClaimsMatrix {
    /// Counts verdicts across solid and family analyses.
    pub fn counts(&self) -> VerdictCounts {
        let mut c = VerdictCounts::default();
        let mut tally = |v: &Verdict| match v {
            Verdict::Detected { .. } => c.detected += 1,
            Verdict::Escaped { .. } => c.escaped += 1,
            Verdict::Unknown { .. } => c.unknown += 1,
        };
        for claim in &self.claims {
            tally(&claim.solid);
            if let Some(family) = &claim.family {
                tally(family);
            }
        }
        c
    }

    /// Looks up the claim for (test name, class code).
    pub fn claim(&self, test: &str, code: &str) -> Option<&Claim> {
        self.claims
            .iter()
            .find(|c| c.test == test && c.class.code() == code)
    }

    /// The test summary by name.
    pub fn test(&self, name: &str) -> Option<&TestSummary> {
        self.tests.iter().find(|t| t.name == name)
    }

    /// The matrix as JSON (stable field order, diffable).
    pub fn to_json(&self) -> Json {
        let counts = self.counts();
        Json::obj([
            (
                "version".to_string(),
                Json::Str("lp-sram-suite/claims-matrix/v1".to_string()),
            ),
            ("dwell_s".to_string(), Json::Num(self.dwell)),
            (
                "tests".to_string(),
                Json::Arr(
                    self.tests
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("name".to_string(), Json::Str(t.name.clone())),
                                ("notation".to_string(), Json::Str(t.notation.clone())),
                                (
                                    "length".to_string(),
                                    Json::Str(format!("{}N+{}", t.formula.0, t.formula.1)),
                                ),
                                ("clean".to_string(), Json::Str(t.clean.code().to_string())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "claims".to_string(),
                Json::Arr(
                    self.claims
                        .iter()
                        .map(|c| {
                            let mut pairs = vec![
                                ("test".to_string(), Json::Str(c.test.clone())),
                                ("class".to_string(), Json::Str(c.class.code())),
                                ("describes".to_string(), Json::Str(c.class.describe())),
                                (
                                    "primitive".to_string(),
                                    Json::Str(c.class.primitive().to_string()),
                                ),
                                ("fault".to_string(), Json::Str(c.instance.fault.to_string())),
                                (
                                    "geometry".to_string(),
                                    Json::obj([
                                        ("words".to_string(), Json::Num(c.instance.words as f64)),
                                        ("bits".to_string(), Json::Num(c.instance.bits as f64)),
                                    ]),
                                ),
                                ("solid".to_string(), c.solid.to_json()),
                            ];
                            if let Some(family) = &c.family {
                                pairs.push(("family".to_string(), family.to_json()));
                            }
                            Json::obj(pairs)
                        })
                        .collect(),
                ),
            ),
            (
                "summary".to_string(),
                Json::obj([
                    ("claims".to_string(), Json::Num(self.claims.len() as f64)),
                    ("detected".to_string(), Json::Num(counts.detected as f64)),
                    ("escaped".to_string(), Json::Num(counts.escaped as f64)),
                    ("unknown".to_string(), Json::Num(counts.unknown as f64)),
                ]),
            ),
        ])
    }

    /// Human-readable rendering, one line per claim.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let counts = self.counts();
        let _ = writeln!(
            out,
            "march coverage claims matrix (dwell {:.1e} s)",
            self.dwell
        );
        for t in &self.tests {
            let _ = writeln!(
                out,
                "\n{} = {}   [{}N+{}]   clean: {}",
                t.name,
                t.notation,
                t.formula.0,
                t.formula.1,
                t.clean.code()
            );
            for c in self.claims.iter().filter(|c| c.test == t.name) {
                let _ = writeln!(
                    out,
                    "  {:<18} {:<12} solid: {}",
                    c.class.code(),
                    c.class.primitive(),
                    c.solid.summary_text()
                );
                if let Some(family) = &c.family {
                    let _ = writeln!(
                        out,
                        "  {:<18} {:<12} family: {}",
                        "",
                        "",
                        family.summary_text()
                    );
                }
            }
        }
        let _ = writeln!(
            out,
            "\n{} claims ({} verdicts): {} detected, {} escaped, {} unknown",
            self.claims.len(),
            counts.detected + counts.escaped + counts.unknown,
            counts.detected,
            counts.escaped,
            counts.unknown
        );
        out
    }
}

impl fmt::Display for ClaimsMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render_text())
    }
}
