//! The prover: per-(test, fault-class) verdicts over the march
//! library, plus the paper's claim table as a checkable artifact.
//!
//! ## Soundness in one paragraph
//!
//! Detection by a march test depends only on (a) the *relative* order
//! in which the sweeps visit the modeled cells and (b) the expected
//! data (phase) at each cell — not on the absolute addresses or bit
//! positions. Writes to unmodeled third-party cells cannot change the
//! modeled state: single-cell faults ignore other addresses entirely,
//! edge-triggered couplings only fire on modeled aggressor writes, and
//! the CFst level rule is idempotent (after every modeled write the
//! machine restores `a == when ⇒ v == forces`, so re-enforcement at
//! third-party writes is a no-op). Valid tests write a cell before
//! they first read it, so the pre-first-write state the machine does
//! not track is never observable. The exhaustive differential harness
//! (`crate::differential`) re-checks this generalization placement by
//! placement against the simulation engine.

use march::background::DataBackground;
use march::fault::{CellRef, Fault};
use march::library;
use march::test::MarchTest;

use crate::class::{FaultClass, Sep};
use crate::machine::{self, Init, Layout, Phases, RunOutcome, RunResult, Semantics};
use crate::sym::Sym;
use crate::verdict::{Claim, ClaimsMatrix, CleanVerdict, Counterexample, TestSummary, Verdict};

fn semantics_and_layout(class: &FaultClass) -> (Semantics, Layout) {
    use crate::class::Pos;
    let layout_of = |pos: Pos| match pos {
        Pos::Below => Layout::AggrBelow,
        Pos::Above => Layout::AggrAbove,
        Pos::Intra => Layout::Intra,
    };
    match class {
        FaultClass::StuckAt { value } => (Semantics::StuckAt(*value), Layout::Single),
        FaultClass::Transition { rising } => {
            (Semantics::Transition { rising: *rising }, Layout::Single)
        }
        FaultClass::Retention { weak } => (Semantics::Retention { weak: *weak }, Layout::Single),
        FaultClass::WakeUpWrite => (Semantics::WakeUpWrite, Layout::Single),
        FaultClass::AddressAlias { .. } => (Semantics::Alias, Layout::Alias),
        FaultClass::CouplingInversion { pos } => (Semantics::Inversion, layout_of(*pos)),
        FaultClass::CouplingIdempotent {
            pos,
            rising,
            forces,
            ..
        } => (
            Semantics::Idempotent {
                rising: *rising,
                forces: *forces,
            },
            layout_of(*pos),
        ),
        FaultClass::CouplingState {
            pos, when, forces, ..
        } => (
            Semantics::State {
                when: *when,
                forces: *forces,
            },
            layout_of(*pos),
        ),
    }
}

/// Every initial-value assignment of the modeled cells; the
/// simulator's zeroed power-on state comes first (it is the one the
/// headline verdict is keyed to — `march::coverage` always grades
/// from a fresh memory).
fn init_combos(layout: Layout) -> Vec<Init> {
    let zero = Init::zeroed();
    match layout {
        Layout::Single | Layout::Alias => vec![
            zero,
            Init {
                a: Sym::Zero,
                v: Sym::One,
            },
        ],
        _ => vec![
            zero,
            Init {
                a: Sym::Zero,
                v: Sym::One,
            },
            Init {
                a: Sym::One,
                v: Sym::Zero,
            },
            Init {
                a: Sym::One,
                v: Sym::One,
            },
        ],
    }
}

fn build_verdict(
    zero: RunOutcome,
    state_independent: bool,
    class: &FaultClass,
    backgrounds: &[DataBackground],
) -> Verdict {
    match zero.result {
        RunResult::Fail(witness) => Verdict::Detected {
            witness,
            chain: zero.events,
            state_independent,
        },
        RunResult::Pass => {
            let inst = class.canonical_instance();
            Verdict::Escaped {
                counterexample: Counterexample {
                    words: inst.words,
                    bits: inst.bits,
                    fault: inst.fault,
                    backgrounds: backgrounds.to_vec(),
                },
                state_independent,
            }
        }
        RunResult::Inconclusive(reason) => Verdict::Unknown { reason },
    }
}

/// The solid-background verdict: one symbolic run per initial-value
/// combination; the zero-init run carries the headline outcome and the
/// others decide state independence.
pub fn solid_verdict(test: &MarchTest, class: &FaultClass) -> Verdict {
    let (sem, layout) = semantics_and_layout(class);
    let mut zero: Option<RunOutcome> = None;
    let mut state_independent = true;
    for init in init_combos(layout) {
        let out = machine::run(test, sem, layout, Phases::solid(), init);
        if let RunResult::Inconclusive(reason) = &out.result {
            return Verdict::Unknown {
                reason: format!("from init a={} v={}: {}", init.a, init.v, reason),
            };
        }
        match &zero {
            None => zero = Some(out),
            Some(z) => {
                if out.failed() != z.failed() {
                    state_independent = false;
                }
            }
        }
    }
    build_verdict(
        zero.expect("at least one init combo"),
        state_independent,
        class,
        &[DataBackground::Solid],
    )
}

/// The intra-word bit pairs the family analysis must distinguish.
///
/// Under the standard backgrounds a bit's data depends only on its
/// index modulo 4 (checkerboard reads bit parity, pair stripes read
/// pair parity, solid and row stripes read neither), so bits 0..4 are
/// exhaustive representatives of the four equivalence classes, and
/// `c + 4` is the same-class partner needed for non-separable pairs.
fn family_pairs(class: &FaultClass) -> Vec<(usize, usize)> {
    let separable: Vec<(usize, usize)> = (0..4)
        .flat_map(|a| (0..4).filter_map(move |v| (a != v).then_some((a, v))))
        .collect();
    // Same-class pairs see identical phases both ways around, so one
    // orientation per class suffices.
    let non_separable: Vec<(usize, usize)> = (0..4).map(|c| (c, c + 4)).collect();
    match class.sep() {
        Some(Sep::Separable) => separable,
        Some(Sep::NonSeparable) => non_separable,
        // CFin intra has no separability split: quantify over all.
        None => separable.into_iter().chain(non_separable).collect(),
    }
}

fn instantiate_pair(class: &FaultClass, a_bit: usize, v_bit: usize, addr: usize) -> Fault {
    let a = CellRef { addr, bit: a_bit };
    let v = CellRef { addr, bit: v_bit };
    match class {
        FaultClass::CouplingInversion { .. } => Fault::coupling_inversion(a, v),
        FaultClass::CouplingIdempotent { rising, forces, .. } => {
            Fault::coupling_idempotent(a, v, *rising, *forces)
        }
        FaultClass::CouplingState { when, forces, .. } => {
            Fault::coupling_state(a, v, *when, *forces)
        }
        _ => unreachable!("family analysis only instantiates intra-word pairs"),
    }
}

/// Runs one concrete intra-word placement under every standard
/// background from the given initial state. `Ok(Some(..))` carries
/// the first failing run and its background; `Ok(None)` means the
/// placement escapes all four backgrounds.
fn instance_family_run(
    test: &MarchTest,
    sem: Semantics,
    a_bit: usize,
    v_bit: usize,
    parity: usize,
    bits: usize,
    init: Init,
) -> Result<Option<(RunOutcome, DataBackground)>, String> {
    for bg in DataBackground::ALL {
        let pattern = bg.pattern(parity, bits);
        let phases = Phases {
            a: (pattern >> a_bit) & 1 == 1,
            v: (pattern >> v_bit) & 1 == 1,
        };
        let out = machine::run(test, sem, Layout::Intra, phases, init);
        match out.result {
            RunResult::Inconclusive(ref reason) => {
                return Err(format!("bits ({a_bit},{v_bit}) under {bg}: {reason}"))
            }
            RunResult::Fail(_) => return Ok(Some((out, bg))),
            RunResult::Pass => {}
        }
    }
    Ok(None)
}

/// The prover's per-placement prediction for an intra-word class:
/// does the test, run under all four standard backgrounds from the
/// zeroed state, catch the fault at this concrete bit pair and
/// address parity? `None` for non-intra classes or an inconclusive
/// symbolic run. The differential harness checks this prediction
/// against the simulator fault by fault.
pub fn family_instance_detected(
    test: &MarchTest,
    class: &FaultClass,
    a_bit: usize,
    v_bit: usize,
    addr_parity: usize,
    bits: usize,
) -> Option<bool> {
    let (sem, layout) = semantics_and_layout(class);
    if layout != Layout::Intra {
        return None;
    }
    instance_family_run(test, sem, a_bit, v_bit, addr_parity, bits, Init::zeroed())
        .ok()
        .map(|run| run.is_some())
}

/// The background-family verdict for an intra-word class, quantified
/// universally over placements: Proven-Detected only when *every* bit
/// placement and address parity is caught by some standard background
/// (from the zeroed state); the moment one placement survives all
/// four backgrounds the class is Proven-Escaped, with that placement
/// as the concrete counterexample. Other initial values decide state
/// independence.
pub fn family_verdict(test: &MarchTest, class: &FaultClass) -> Verdict {
    let (sem, layout) = semantics_and_layout(class);
    debug_assert_eq!(layout, Layout::Intra);
    let combos = init_combos(layout);
    let mut first_detect: Option<(RunOutcome, DataBackground, (usize, usize), usize)> = None;
    let mut first_escape: Option<((usize, usize), usize)> = None;
    let mut state_independent = true;
    for (a_bit, v_bit) in family_pairs(class) {
        for parity in [0usize, 1] {
            let mut zero_detected: Option<bool> = None;
            for init in &combos {
                let run = match instance_family_run(test, sem, a_bit, v_bit, parity, 8, *init) {
                    Ok(run) => run,
                    Err(reason) => {
                        return Verdict::Unknown {
                            reason: format!("family analysis: {reason}"),
                        }
                    }
                };
                let detected = run.is_some();
                match zero_detected {
                    None => {
                        zero_detected = Some(detected);
                        match run {
                            Some((out, bg)) if first_detect.is_none() => {
                                first_detect = Some((out, bg, (a_bit, v_bit), parity));
                            }
                            None if first_escape.is_none() => {
                                first_escape = Some(((a_bit, v_bit), parity));
                            }
                            _ => {}
                        }
                    }
                    Some(z) => {
                        if detected != z {
                            state_independent = false;
                        }
                    }
                }
            }
        }
    }
    if let Some(((a_bit, v_bit), parity)) = first_escape {
        Verdict::Escaped {
            counterexample: Counterexample {
                words: parity + 1,
                bits: 8,
                fault: instantiate_pair(class, a_bit, v_bit, parity),
                backgrounds: DataBackground::ALL.to_vec(),
            },
            state_independent,
        }
    } else {
        let (out, bg, (a_bit, v_bit), parity) =
            first_detect.expect("no escape means every placement detected");
        let RunResult::Fail(witness) = out.result else {
            unreachable!("first_detect only records failing runs")
        };
        let mut chain = vec![format!(
            "{} background sensitizes bits ({a_bit},{v_bit}) at {} addresses",
            bg,
            if parity == 0 { "even" } else { "odd" }
        )];
        chain.extend(out.events);
        Verdict::Detected {
            witness,
            chain,
            state_independent,
        }
    }
}

/// Proves a test never fails a fault-free memory, from any initial
/// state and under any background phase.
pub fn prove_clean(test: &MarchTest) -> CleanVerdict {
    for phase in [false, true] {
        let out = machine::run(
            test,
            Semantics::Clean,
            Layout::Single,
            Phases { a: true, v: phase },
            Init {
                a: Sym::Top,
                v: Sym::Top,
            },
        );
        match out.result {
            RunResult::Pass => {}
            RunResult::Fail(witness) => return CleanVerdict::FalseFail { witness },
            RunResult::Inconclusive(reason) => return CleanVerdict::Unknown { reason },
        }
    }
    CleanVerdict::ProvenClean
}

/// Proves one test against every standard fault class.
pub fn prove_test(test: &MarchTest) -> (TestSummary, Vec<Claim>) {
    let notation = {
        let shown = test.to_string();
        shown
            .split_once(" = ")
            .map(|(_, rhs)| rhs)
            .unwrap_or(&shown)
            .to_string()
    };
    let summary = TestSummary {
        name: test.name().to_string(),
        notation,
        formula: test.length_formula(),
        clean: prove_clean(test),
    };
    let claims = FaultClass::all_standard()
        .into_iter()
        .map(|class| {
            let solid = solid_verdict(test, &class);
            let family = class.is_intra().then(|| family_verdict(test, &class));
            Claim {
                test: test.name().to_string(),
                instance: class.canonical_instance(),
                class,
                solid,
                family,
            }
        })
        .collect();
    (summary, claims)
}

/// Proves the whole `march::library` and emits the
/// `prove.verdicts.{detected,escaped,unknown}` counters.
pub fn prove_library(dwell: f64) -> ClaimsMatrix {
    let span = obs::span("prove.library");
    let mut tests = Vec::new();
    let mut claims = Vec::new();
    for test in library::all(dwell) {
        let (summary, mut test_claims) = prove_test(&test);
        tests.push(summary);
        claims.append(&mut test_claims);
    }
    let matrix = ClaimsMatrix {
        dwell,
        tests,
        claims,
    };
    let counts = matrix.counts();
    obs::counter_add("prove.claims", matrix.claims.len() as u64);
    obs::counter_add("prove.verdicts.detected", counts.detected as u64);
    obs::counter_add("prove.verdicts.escaped", counts.escaped as u64);
    obs::counter_add("prove.verdicts.unknown", counts.unknown as u64);
    drop(span);
    matrix
}

/// One entry of the paper's detection-claim table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PaperClaim {
    /// Test name (as in `march::library`).
    pub test: &'static str,
    /// Fault-class code.
    pub class: &'static str,
    /// Whether the claim is about the background family rather than
    /// the solid background.
    pub family: bool,
    /// `true` → must be Proven-Detected; `false` → Proven-Escaped.
    pub expect_detected: bool,
}

/// The paper's claim table (DATE 2013, Table of detection claims for
/// March m-LZ vs March LZ vs the standard tests), as machine-checkable
/// expectations.
pub fn paper_claims() -> Vec<PaperClaim> {
    let mut out = Vec::new();
    let mut push = |test: &'static str, classes: &[&'static str], family: bool, det: bool| {
        for class in classes {
            out.push(PaperClaim {
                test,
                class,
                family,
                expect_detected: det,
            });
        }
    };
    const CFID_INTER: [&str; 8] = [
        "CFID_LO_R0",
        "CFID_LO_R1",
        "CFID_LO_F0",
        "CFID_LO_F1",
        "CFID_HI_R0",
        "CFID_HI_R1",
        "CFID_HI_F0",
        "CFID_HI_F1",
    ];
    const CFST_INTER: [&str; 8] = [
        "CFST_LO_S0F0",
        "CFST_LO_S0F1",
        "CFST_LO_S1F0",
        "CFST_LO_S1F1",
        "CFST_HI_S0F0",
        "CFST_HI_S0F1",
        "CFST_HI_S1F0",
        "CFST_HI_S1F1",
    ];

    // March m-LZ: the paper's contribution — full SAF coverage plus
    // both deep-sleep retention polarities and the wake-up write
    // fault.
    push("March m-LZ", &["SAF0", "SAF1"], false, true);
    push("March m-LZ", &["DRF0", "DRF1"], false, true);
    push("March m-LZ", &["WUF"], false, true);
    // March LZ: catches the wake-up fault and the weak-1 DRF, but the
    // weak-0 DRF escapes (the gap m-LZ closes with its second DSM/WUP
    // episode on the inverted background).
    push("March LZ", &["DRF1", "WUF"], false, true);
    push("March LZ", &["DRF0"], false, false);
    // Standard tests never enter deep-sleep: all retention and
    // wake-up faults escape.
    for test in ["MATS+", "March C-", "March SS"] {
        push(test, &["SAF0", "SAF1"], false, true);
        push(test, &["AF_LO", "AF_HI"], false, true);
        push(test, &["DRF0", "DRF1", "WUF"], false, false);
    }
    // March C- and March SS: transition and coupling coverage.
    for test in ["March C-", "March SS"] {
        push(test, &["TF_R", "TF_F"], false, true);
        push(test, &["CFIN_LO", "CFIN_HI"], false, true);
        push(test, &CFID_INTER, false, true);
        push(test, &CFST_INTER, false, true);
    }
    // Intra-word state coupling under the standard background family
    // (van de Goor's data-background argument): separable pairs are
    // caught, and so are non-separable pairs whose forced value
    // contradicts the shared data — but a non-separable pair forced
    // to the value it is co-written with can never be sensitized.
    push(
        "March C-",
        &[
            "CFST_IW_SEP_S0F0",
            "CFST_IW_SEP_S0F1",
            "CFST_IW_SEP_S1F0",
            "CFST_IW_SEP_S1F1",
            "CFST_IW_NSEP_S0F1",
            "CFST_IW_NSEP_S1F0",
        ],
        true,
        true,
    );
    push(
        "March C-",
        &["CFST_IW_NSEP_S0F0", "CFST_IW_NSEP_S1F1"],
        true,
        false,
    );
    out
}

/// Checks the matrix against the paper's claim table; returns one
/// problem string per disagreement (empty = all claims proven).
pub fn check_paper_claims(matrix: &ClaimsMatrix) -> Vec<String> {
    let mut problems = Vec::new();
    for pc in paper_claims() {
        let scope = if pc.family { "family" } else { "solid" };
        let Some(claim) = matrix.claim(pc.test, pc.class) else {
            problems.push(format!(
                "{} / {}: claim missing from matrix",
                pc.test, pc.class
            ));
            continue;
        };
        let verdict = if pc.family {
            claim.family.as_ref()
        } else {
            Some(&claim.solid)
        };
        let Some(verdict) = verdict else {
            problems.push(format!(
                "{} / {}: paper expects a {scope} verdict but none was computed",
                pc.test, pc.class
            ));
            continue;
        };
        let ok = if pc.expect_detected {
            verdict.is_detected()
        } else {
            verdict.is_escaped()
        };
        if !ok {
            problems.push(format!(
                "{} / {} ({scope}): paper claims {}, prover says {}",
                pc.test,
                pc.class,
                if pc.expect_detected {
                    "Proven-Detected"
                } else {
                    "Proven-Escaped"
                },
                verdict.code()
            ));
        }
    }
    problems
}
