//! The symbolic cell-value lattice.
//!
//! A cell holds `Zero`, `One`, or `Top` (⊤ — unknown, either value).
//! `Top` only arises from an uninitialised cell; every march element
//! that writes refines the value to a constant, and the abstract
//! transformers in [`crate::machine`] only ever *lose* precision on
//! paths a valid test cannot observe (validated tests write before
//! they read, see `MarchTest::validate`).

use std::fmt;

/// A symbolic cell value: a flat lattice over `bool` with ⊤ on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sym {
    /// Known `0`.
    Zero,
    /// Known `1`.
    One,
    /// Unknown — could be either value (⊤).
    Top,
}

impl Sym {
    /// Lifts a concrete bit.
    pub fn from_bool(b: bool) -> Sym {
        if b {
            Sym::One
        } else {
            Sym::Zero
        }
    }

    /// The concrete bit, if known.
    pub fn as_bool(self) -> Option<bool> {
        match self {
            Sym::Zero => Some(false),
            Sym::One => Some(true),
            Sym::Top => None,
        }
    }

    /// Whether this value is known to equal the concrete bit `b`.
    pub fn is(self, b: bool) -> bool {
        self.as_bool() == Some(b)
    }
}

impl std::ops::Not for Sym {
    type Output = Sym;

    /// Logical negation; ⊤ stays ⊤.
    fn not(self) -> Sym {
        match self {
            Sym::Zero => Sym::One,
            Sym::One => Sym::Zero,
            Sym::Top => Sym::Top,
        }
    }
}

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sym::Zero => write!(f, "0"),
            Sym::One => write!(f, "1"),
            Sym::Top => write!(f, "⊤"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice_basics() {
        assert_eq!(Sym::from_bool(true), Sym::One);
        assert_eq!(Sym::from_bool(false), Sym::Zero);
        assert_eq!(!Sym::One, Sym::Zero);
        assert_eq!(!Sym::Top, Sym::Top);
        assert_eq!(Sym::Top.as_bool(), None);
        assert!(Sym::One.is(true));
        assert!(!Sym::Top.is(true));
        assert_eq!(Sym::Top.to_string(), "⊤");
    }
}
