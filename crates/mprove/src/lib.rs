//! Symbolic march-test coverage prover.
//!
//! This crate abstractly interprets a [`march::test::MarchTest`] over
//! a tiny per-cell symbolic state (value ∈ {0, 1, ⊤} plus fault-local
//! bookkeeping) parameterized over the fault primitives of
//! `march::fault`, with the aggressor/victim *positions* treated
//! symbolically: one run covers every address and bit placement of a
//! fault class at once, so coverage claims become machine-checked
//! proofs instead of sampled observations.
//!
//! For every `(test, fault class)` pair in the library the prover
//! returns a [`verdict::Verdict`]:
//!
//! * **Proven-Detected** — with a witness `(element, op)` read that
//!   observes the fault and the event chain leading to it;
//! * **Proven-Escaped** — with a concrete minimal counterexample
//!   (geometry + fault + backgrounds) the simulation can replay;
//! * **Unknown** — with the blind spot named, never silently.
//!
//! The [`differential`] module closes the loop: escapes are replayed
//! through `march::coverage` and detections cross-checked against an
//! exhaustive fault enumeration, so the symbolic machine and the
//! concrete simulator must agree or the build fails.
//!
//! The crate is zero-dependency beyond the workspace's own `march`
//! and `obs` crates.

pub mod class;
pub mod differential;
pub mod machine;
pub mod prove;
pub mod sym;
pub mod verdict;

pub use class::{FaultClass, Instance, Pos, Sep};
pub use machine::{Init, Layout, Phases, RunOutcome, RunResult, Semantics, Witness};
pub use prove::{
    check_paper_claims, family_instance_detected, paper_claims, prove_clean, prove_library,
    prove_test, PaperClaim,
};
pub use sym::Sym;
pub use verdict::{
    Claim, ClaimsMatrix, CleanVerdict, Counterexample, TestSummary, Verdict, VerdictCounts,
};
