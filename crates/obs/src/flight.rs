//! Convergence flight recorder: a fixed-capacity, thread-local ring
//! buffer of per-iteration Newton samples.
//!
//! The solver calls [`flight_record`] once per Newton iteration with
//! the residual infinity-norm and the damping factor in effect; the
//! rescue ladder labels the samples with [`flight_set_stage`] /
//! [`flight_set_attempt`]. A campaign executor brackets each grid
//! point with [`flight_begin`] / [`flight_take`] and hands the
//! trajectory of interesting points (the slowest, and everything that
//! failed) to [`crate::metrics::record_trace`].
//!
//! The recorder is disabled by default and *globally opt-in*
//! ([`flight_enable`]); while disabled, [`flight_record`] is a single
//! relaxed atomic load. While enabled it is an index write into a
//! buffer whose capacity [`flight_begin`] pre-reserved — the per-
//! iteration path never allocates, which the solver's counting-
//! allocator tests assert. When a point runs longer than the capacity,
//! the ring keeps the *last* N samples (the death throes are the
//! interesting part), and reports how many were recorded in total.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Default ring capacity: enough for a typical full rescue-ladder
/// traversal while keeping the per-thread footprint at a few KiB.
pub const DEFAULT_CAPACITY: usize = 256;

static ENABLED: AtomicBool = AtomicBool::new(false);
static CAPACITY: AtomicUsize = AtomicUsize::new(DEFAULT_CAPACITY);

/// One recorded Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceSample {
    /// Rescue-ladder stage label (e.g. `"plain"`, `"gmin-stepping"`).
    pub stage: &'static str,
    /// Whole-solve retry attempt the iteration belongs to (0-based).
    pub attempt: u16,
    /// Residual infinity-norm (`max_delta`) after the update.
    pub residual: f64,
    /// Damping factor applied on this iteration.
    pub alpha: f64,
}

/// A completed point's recorded trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct PointTrajectory {
    /// The retained samples in chronological order (the last
    /// `capacity` iterations when the point overflowed the ring).
    pub samples: Vec<TraceSample>,
    /// Total iterations recorded, including overwritten ones.
    pub recorded: u64,
}

struct Ring {
    buf: Vec<TraceSample>,
    cap: usize,
    /// Overwrite cursor once the buffer is full.
    next: usize,
    recorded: u64,
    stage: &'static str,
    attempt: u16,
    /// Set by `flight_begin` on this thread only: keeps concurrent
    /// threads that never began a point from recording (or allocating)
    /// just because the recorder is globally enabled.
    active: bool,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            buf: Vec::new(),
            cap: 0,
            next: 0,
            recorded: 0,
            stage: "plain",
            attempt: 0,
            active: false,
        }
    }
}

thread_local! {
    static RING: RefCell<Ring> = const { RefCell::new(Ring::new()) };
}

/// Globally enables the recorder with the given per-thread ring
/// capacity (clamped to at least 1).
pub fn flight_enable(capacity: usize) {
    CAPACITY.store(capacity.max(1), Ordering::Relaxed);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Globally disables the recorder.
pub fn flight_disable() {
    ENABLED.store(false, Ordering::Relaxed);
}

/// Whether the recorder is globally enabled.
pub fn flight_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Starts recording a point on the calling thread: clears the ring and
/// pre-reserves its full capacity, so every subsequent
/// [`flight_record`] is allocation-free. A no-op while the recorder is
/// disabled.
pub fn flight_begin() {
    if !flight_enabled() {
        return;
    }
    let cap = CAPACITY.load(Ordering::Relaxed);
    let _ = RING.try_with(|ring| {
        let mut ring = ring.borrow_mut();
        ring.buf.clear();
        ring.buf.reserve(cap);
        ring.cap = cap;
        ring.next = 0;
        ring.recorded = 0;
        ring.stage = "plain";
        ring.attempt = 0;
        ring.active = true;
    });
}

/// Labels subsequent samples with the rescue-ladder stage in effect.
pub fn flight_set_stage(stage: &'static str) {
    if !flight_enabled() {
        return;
    }
    let _ = RING.try_with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.active {
            ring.stage = stage;
        }
    });
}

/// Labels subsequent samples with the whole-solve retry attempt.
pub fn flight_set_attempt(attempt: u16) {
    if !flight_enabled() {
        return;
    }
    let _ = RING.try_with(|ring| {
        let mut ring = ring.borrow_mut();
        if ring.active {
            ring.attempt = attempt;
        }
    });
}

/// Records one Newton iteration. Allocation-free: the ring's capacity
/// was reserved by [`flight_begin`]; overflow overwrites the oldest
/// sample. A no-op unless the recorder is enabled *and* the calling
/// thread is inside a `flight_begin`/`flight_take` bracket.
#[inline]
pub fn flight_record(residual: f64, alpha: f64) {
    if !flight_enabled() {
        return;
    }
    let _ = RING.try_with(|ring| {
        let mut ring = ring.borrow_mut();
        if !ring.active {
            return;
        }
        let sample = TraceSample {
            stage: ring.stage,
            attempt: ring.attempt,
            residual,
            alpha,
        };
        if ring.buf.len() < ring.cap {
            ring.buf.push(sample);
        } else {
            let i = ring.next;
            ring.buf[i] = sample;
            ring.next = (i + 1) % ring.cap;
        }
        ring.recorded += 1;
    });
}

/// Ends the calling thread's recording bracket and returns the
/// trajectory, in chronological order. `None` when the recorder was
/// off, no bracket was open, or no iterations were recorded.
pub fn flight_take() -> Option<PointTrajectory> {
    RING.try_with(|ring| {
        let mut ring = ring.borrow_mut();
        if !ring.active {
            return None;
        }
        ring.active = false;
        if ring.recorded == 0 {
            return None;
        }
        // When the ring wrapped, `next` points at the oldest sample.
        let samples = if ring.buf.len() < ring.cap || ring.next == 0 {
            ring.buf.clone()
        } else {
            let mut v = Vec::with_capacity(ring.buf.len());
            v.extend_from_slice(&ring.buf[ring.next..]);
            v.extend_from_slice(&ring.buf[..ring.next]);
            v
        };
        let recorded = ring.recorded;
        ring.buf.clear();
        ring.recorded = 0;
        Some(PointTrajectory { samples, recorded })
    })
    .ok()
    .flatten()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The recorder state is global; tests touching it must not
    /// overlap — each runs its ring on a dedicated thread and brackets
    /// enable/disable under a lock.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _guard = test_lock();
        flight_disable();
        std::thread::spawn(|| {
            flight_begin();
            flight_record(1.0, 1.0);
            assert!(flight_take().is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn records_in_order_and_labels_stages() {
        let _guard = test_lock();
        flight_enable(8);
        std::thread::spawn(|| {
            flight_begin();
            flight_record(4.0, 1.0);
            flight_set_stage("gmin-stepping");
            flight_set_attempt(1);
            flight_record(2.0, 0.5);
            let t = flight_take().expect("trajectory");
            assert_eq!(t.recorded, 2);
            assert_eq!(t.samples.len(), 2);
            assert_eq!(t.samples[0].stage, "plain");
            assert_eq!(t.samples[0].attempt, 0);
            assert_eq!(t.samples[0].residual, 4.0);
            assert_eq!(t.samples[1].stage, "gmin-stepping");
            assert_eq!(t.samples[1].attempt, 1);
            assert_eq!(t.samples[1].alpha, 0.5);
            // The bracket is closed: further records are dropped.
            flight_record(1.0, 1.0);
            assert!(flight_take().is_none());
        })
        .join()
        .unwrap();
        flight_disable();
    }

    #[test]
    fn overflow_keeps_the_last_samples_chronologically() {
        let _guard = test_lock();
        flight_enable(4);
        std::thread::spawn(|| {
            flight_begin();
            for i in 0..10 {
                flight_record(f64::from(i), 1.0);
            }
            let t = flight_take().expect("trajectory");
            assert_eq!(t.recorded, 10);
            let residuals: Vec<f64> = t.samples.iter().map(|s| s.residual).collect();
            assert_eq!(residuals, vec![6.0, 7.0, 8.0, 9.0]);
        })
        .join()
        .unwrap();
        flight_disable();
    }

    #[test]
    fn inactive_thread_ignores_records_while_enabled() {
        let _guard = test_lock();
        flight_enable(8);
        std::thread::spawn(|| {
            // No flight_begin on this thread: recording must be inert.
            flight_record(1.0, 1.0);
            assert!(flight_take().is_none());
        })
        .join()
        .unwrap();
        flight_disable();
    }

    #[test]
    fn begin_resets_a_previous_bracket() {
        let _guard = test_lock();
        flight_enable(4);
        std::thread::spawn(|| {
            flight_begin();
            flight_record(9.0, 1.0);
            flight_set_stage("gmin-stepping");
            // Abandon without take; the next begin starts clean.
            flight_begin();
            flight_record(1.0, 1.0);
            let t = flight_take().expect("trajectory");
            assert_eq!(t.recorded, 1);
            assert_eq!(t.samples[0].stage, "plain");
        })
        .join()
        .unwrap();
        flight_disable();
    }
}
