//! Minimal JSON value model, serializer and parser.
//!
//! The suite builds offline, so there is no `serde`; this module is the
//! whole JSON substrate of the observability layer — enough to write
//! JSONL event streams and to round-trip a [run
//! manifest](crate::manifest::RunManifest). Object keys keep insertion
//! order so serialized manifests stay diffable.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (JSON does not distinguish integer from float).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj<I: IntoIterator<Item = (String, Json)>>(pairs: I) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// A number that degrades to [`Json::Null`] when `n` is NaN or
    /// infinite. JSON has no non-finite literals, so a raw
    /// `Json::Num(f64::INFINITY)` would serialize as `null` anyway;
    /// this constructor makes the degradation explicit at the source
    /// (`parse` then reads the value back exactly) instead of
    /// smuggling an unrepresentable float through the value tree.
    /// Rate and ETA emitters use it for quantities that are legitimately
    /// infinite before throughput is measurable.
    pub fn finite_num(n: f64) -> Json {
        if n.is_finite() {
            Json::Num(n)
        } else {
            Json::Null
        }
    }

    /// The value at `key`, for objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if whole.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The pairs, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Compact single-line rendering (the JSONL form).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Indented rendering (the manifest form).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(out, *n),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(pairs) => {
                write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i, d| {
                    write_escaped(out, &pairs[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    pairs[i].1.write(out, indent, d);
                });
            }
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

/// Writes `n` in a form `parse` reads back exactly; non-finite values
/// (JSON has none) degrade to `null`.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1.0e15 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        // {:?} on f64 is the shortest round-trippable decimal form.
        let _ = fmt::write(out, format_args!("{n:?}"));
    }
}

/// Writes `s` as a JSON string literal, escaping quotes, backslashes
/// and control characters.
pub fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure in the input.
    pub pos: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON document (trailing whitespace allowed, trailing
/// content rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first malformed token.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> JsonError {
        JsonError {
            pos: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Consume a run of plain bytes in one go.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000c}'),
                        Some(b'u') => {
                            let code = self.hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xd800..0xdc00).contains(&code) {
                                self.pos += 1; // past the first 'u's last hex digit
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let joined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(joined).ok_or_else(|| self.err("bad code point"))?
                            } else {
                                char::from_u32(code).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    /// Reads the 4 hex digits after a `u` escape; leaves `pos` on the
    /// last digit (the caller advances past it).
    fn hex4(&mut self) -> Result<u32, JsonError> {
        let mut code = 0u32;
        for _ in 0..4 {
            self.pos += 1;
            let d = match self.peek() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("expected 4 hex digits")),
            };
            code = code * 16 + d;
        }
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars_and_structure() {
        let doc = Json::obj([
            ("a".into(), Json::Num(1.5)),
            ("b".into(), Json::Arr(vec![Json::Null, Json::Bool(true)])),
            ("c".into(), Json::Str("hi".into())),
            ("n".into(), Json::Num(-3.0)),
        ]);
        for text in [doc.to_compact(), doc.to_pretty()] {
            assert_eq!(parse(&text).unwrap(), doc, "{text}");
        }
    }

    #[test]
    fn escapes_and_unescapes_control_characters() {
        let nasty = "quote \" backslash \\ newline \n tab \t bell \u{0007} unicode é";
        let doc = Json::Str(nasty.into());
        let text = doc.to_compact();
        assert!(text.contains("\\\""));
        assert!(text.contains("\\\\"));
        assert!(text.contains("\\n"));
        assert!(text.contains("\\u0007"));
        assert!(
            !text[1..text.len() - 1].contains('\n'),
            "raw newline leaked"
        );
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""é 😀""#).unwrap(), Json::Str("é 😀".into()));
        assert!(parse(r#""\ud83d oops""#).is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,", "\"abc", "01x", "{\"a\" 1}", "[] []", "tru"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn numbers_round_trip_precisely() {
        for n in [0.0, -1.0, 1.0e-9, 976.5625, 1.23456789e300, 42.0] {
            let text = Json::Num(n).to_compact();
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back, n, "{text}");
        }
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
    }

    #[test]
    fn finite_num_degrades_non_finite_to_null() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let v = Json::finite_num(bad);
            assert_eq!(v, Json::Null, "{bad}");
            assert_eq!(parse(&v.to_compact()).unwrap(), Json::Null);
        }
        // Finite values pass through and round-trip exactly.
        let v = Json::finite_num(976.5625);
        assert_eq!(parse(&v.to_compact()).unwrap().as_f64(), Some(976.5625));
        // The raw constructor serializes non-finite identically, so a
        // value tree holding either form writes the same document.
        assert_eq!(
            Json::Num(f64::INFINITY).to_compact(),
            Json::finite_num(f64::INFINITY).to_compact()
        );
    }

    #[test]
    fn accessors() {
        let doc = parse(r#"{"k": [1, "two"], "n": 7}"#).unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(7));
        let arr = doc.get("k").and_then(Json::as_arr).unwrap();
        assert_eq!(arr[1].as_str(), Some("two"));
        assert!(doc.get("missing").is_none());
        assert_eq!(doc.as_obj().unwrap().len(), 2);
    }
}
