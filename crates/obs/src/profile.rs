//! Profile aggregation over a `--trace` JSONL span stream.
//!
//! [`Profile::from_jsonl`] folds the `span_end` events of a trace file
//! into a calling-context forest keyed by the hierarchical span path:
//! per path, the call count, total (inclusive) wall-clock, self
//! (exclusive) wall-clock, and the solver work (Newton iterations /
//! retries) attributed to spans that closed at that path. The forest
//! renders as a top-down tree plus a self-time hotlist
//! ([`Profile::render`]) and exports collapsed-stack format
//! ([`Profile::to_collapsed`]) consumable by `inferno` / speedscope.
//!
//! Span paths are `/`-joined per thread, so each worker thread
//! contributes its own roots (e.g. `context`, `characterize`) next to
//! the main thread's artifact root (e.g. `table2`). Concurrent roots
//! overlap in wall-clock and are deliberately never summed together.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};

/// One aggregated calling-context node.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ProfileNode {
    /// Hierarchical span path (`table2/context`).
    pub path: String,
    /// Completed spans at this path.
    pub count: u64,
    /// Inclusive wall-clock, seconds.
    pub total_s: f64,
    /// Exclusive wall-clock: `total_s` minus direct children's totals,
    /// clamped at zero.
    pub self_s: f64,
    /// Newton iterations run while spans at this path were innermost
    /// on their thread (attributed at span close).
    pub iterations: u64,
    /// Whole-solve retries, same attribution.
    pub retries: u64,
}

/// An aggregated profile of one trace file.
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// Nodes keyed by path (sorted, so rendering is deterministic).
    pub nodes: BTreeMap<String, ProfileNode>,
    /// Spans opened but never closed (a crash mid-span, or a truncated
    /// trace): `span_start` events minus `span_end` events.
    pub unclosed: i64,
    /// Distinct producing threads seen in the stream.
    pub threads: u64,
    /// Event lines parsed.
    pub events: u64,
    /// Lines that were not valid JSON (e.g. a torn final line).
    pub skipped: u64,
}

impl Profile {
    /// Aggregates a JSONL trace. Unparseable lines are counted in
    /// [`skipped`](Profile::skipped) rather than failing the whole
    /// file — a killed process leaves a torn last line.
    pub fn from_jsonl(text: &str) -> Profile {
        let mut p = Profile::default();
        let mut starts: u64 = 0;
        let mut ends: u64 = 0;
        let mut tids = std::collections::BTreeSet::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            let Ok(doc) = json::parse(line) else {
                p.skipped += 1;
                continue;
            };
            p.events += 1;
            if let Some(tid) = doc.get("tid").and_then(Json::as_u64) {
                tids.insert(tid);
            }
            match doc.get("kind").and_then(Json::as_str) {
                Some("span_start") => starts += 1,
                Some("span_end") => {
                    ends += 1;
                    let Some(path) = doc.get("path").and_then(Json::as_str) else {
                        continue;
                    };
                    let node = p.nodes.entry(path.to_string()).or_default();
                    if node.path.is_empty() {
                        node.path = path.to_string();
                    }
                    node.count += 1;
                    node.total_s += doc.get("seconds").and_then(Json::as_f64).unwrap_or(0.0);
                    node.iterations += doc.get("iterations").and_then(Json::as_u64).unwrap_or(0);
                    node.retries += doc.get("retries").and_then(Json::as_u64).unwrap_or(0);
                }
                _ => {}
            }
        }
        p.threads = tids.len() as u64;
        p.unclosed = starts as i64 - ends as i64;
        // Self time: total minus the totals of *direct* children.
        let child_totals: Vec<(String, f64)> = p
            .nodes
            .values()
            .filter_map(|n| parent_of(&n.path).map(|parent| (parent.to_string(), n.total_s)))
            .collect();
        for node in p.nodes.values_mut() {
            node.self_s = node.total_s;
        }
        for (parent, child_total) in child_totals {
            if let Some(node) = p.nodes.get_mut(&parent) {
                node.self_s = (node.self_s - child_total).max(0.0);
            }
        }
        p
    }

    /// Root paths (no `/`), slowest first.
    pub fn roots(&self) -> Vec<&ProfileNode> {
        let mut roots: Vec<&ProfileNode> = self
            .nodes
            .values()
            .filter(|n| parent_of(&n.path).is_none())
            .collect();
        roots.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite"));
        roots
    }

    /// Inclusive wall-clock of the node at `path`, when present.
    pub fn total_s(&self, path: &str) -> Option<f64> {
        self.nodes.get(path).map(|n| n.total_s)
    }

    /// Renders the top-down tree (every root, children sorted by total
    /// descending) followed by the top-`top_k` self-time hotlist.
    pub fn render(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "profile — {} span paths, {} events, {} threads{}{}",
            self.nodes.len(),
            self.events,
            self.threads,
            if self.skipped > 0 {
                format!(", {} unparseable lines skipped", self.skipped)
            } else {
                String::new()
            },
            if self.unclosed != 0 {
                format!(", {} spans never closed", self.unclosed)
            } else {
                String::new()
            },
        );
        let _ = writeln!(
            out,
            "\n{:<52} {:>10} {:>10} {:>8} {:>12}",
            "calling-context tree", "total_s", "self_s", "count", "iterations"
        );
        for root in self.roots() {
            self.render_subtree(&mut out, &root.path, 0);
        }
        let mut hot: Vec<&ProfileNode> = self.nodes.values().collect();
        hot.sort_by(|a, b| b.self_s.partial_cmp(&a.self_s).expect("finite"));
        let _ = writeln!(out, "\nhotlist (self wall-clock):");
        for n in hot.iter().take(top_k) {
            let _ = writeln!(
                out,
                "  {:<50} {:>10.4}s ×{:<8} {} iterations",
                n.path, n.self_s, n.count, n.iterations
            );
        }
        out
    }

    fn render_subtree(&self, out: &mut String, path: &str, depth: usize) {
        let Some(node) = self.nodes.get(path) else {
            return;
        };
        let name = path.rsplit('/').next().unwrap_or(path);
        let label = format!("{}{}", "  ".repeat(depth), name);
        let _ = writeln!(
            out,
            "{:<52} {:>10.4} {:>10.4} {:>8} {:>12}",
            label, node.total_s, node.self_s, node.count, node.iterations
        );
        let mut children: Vec<&ProfileNode> = self
            .nodes
            .values()
            .filter(|n| parent_of(&n.path) == Some(path))
            .collect();
        children.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite"));
        for child in children {
            self.render_subtree(out, &child.path, depth + 1);
        }
    }

    /// Collapsed-stack export: one `frame;frame;frame µs` line per
    /// node with positive self time, weights in integer microseconds.
    pub fn to_collapsed(&self) -> String {
        let mut out = String::new();
        for node in self.nodes.values() {
            let us = (node.self_s * 1.0e6).round() as u64;
            if us == 0 {
                continue;
            }
            let _ = writeln!(out, "{} {}", node.path.replace('/', ";"), us);
        }
        out
    }

    /// Machine-readable form of the aggregation.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("events".into(), Json::Num(self.events as f64)),
            ("threads".into(), Json::Num(self.threads as f64)),
            ("skipped".into(), Json::Num(self.skipped as f64)),
            ("unclosed".into(), Json::Num(self.unclosed as f64)),
            (
                "nodes".into(),
                Json::Arr(
                    self.nodes
                        .values()
                        .map(|n| {
                            Json::obj([
                                ("path".into(), Json::Str(n.path.clone())),
                                ("count".into(), Json::Num(n.count as f64)),
                                ("total_s".into(), Json::Num(n.total_s)),
                                ("self_s".into(), Json::Num(n.self_s)),
                                ("iterations".into(), Json::Num(n.iterations as f64)),
                                ("retries".into(), Json::Num(n.retries as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

/// The parent path of a `/`-joined span path (`None` for roots).
fn parent_of(path: &str) -> Option<&str> {
    path.rsplit_once('/').map(|(parent, _)| parent)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(kind: &str, path: &str, seconds: f64, iters: u64, tid: u64) -> String {
        format!(
            r#"{{"ts": 0.1, "tid": {tid}, "kind": "{kind}", "path": "{path}", "seconds": {seconds}, "iterations": {iters}, "retries": 0}}"#
        )
    }

    fn sample_trace() -> String {
        let mut t = String::new();
        // Main thread: root with two children; worker: its own root.
        for path in ["table2", "table2/context", "table2/search", "context"] {
            t.push_str(&line("span_start", path, 0.0, 0, 1));
            t.push('\n');
        }
        t.push_str(&line("span_end", "table2/context", 2.0, 100, 1));
        t.push('\n');
        t.push_str(&line("span_end", "table2/search", 3.0, 200, 1));
        t.push('\n');
        t.push_str(&line("span_end", "table2", 10.0, 0, 1));
        t.push('\n');
        t.push_str(&line("span_end", "context", 1.5, 50, 2));
        t.push('\n');
        t
    }

    #[test]
    fn builds_the_forest_with_self_times() {
        let p = Profile::from_jsonl(&sample_trace());
        assert_eq!(p.nodes.len(), 4);
        assert_eq!(p.threads, 2);
        assert_eq!(p.unclosed, 0);
        let root = &p.nodes["table2"];
        assert!((root.total_s - 10.0).abs() < 1e-12);
        assert!((root.self_s - 5.0).abs() < 1e-12, "10 - (2 + 3)");
        // Worker roots stay separate from the main root.
        let roots: Vec<&str> = p.roots().iter().map(|n| n.path.as_str()).collect();
        assert_eq!(roots, vec!["table2", "context"]);
        assert_eq!(p.nodes["table2/search"].iterations, 200);
    }

    #[test]
    fn self_time_clamps_at_zero_for_overlapping_children() {
        // Children's totals can exceed the parent when they ran on
        // other threads; self time must not go negative.
        let mut t = String::new();
        t.push_str(&line("span_end", "a", 1.0, 0, 1));
        t.push('\n');
        t.push_str(&line("span_end", "a/b", 0.8, 0, 1));
        t.push('\n');
        t.push_str(&line("span_end", "a/c", 0.9, 0, 1));
        t.push('\n');
        let p = Profile::from_jsonl(&t);
        assert_eq!(p.nodes["a"].self_s, 0.0);
    }

    #[test]
    fn torn_lines_are_skipped_and_unclosed_spans_reported() {
        let mut t = sample_trace();
        t.push_str(&line("span_start", "table2/extra", 0.0, 0, 1));
        t.push('\n');
        t.push_str(r#"{"ts": 9.9, "kind": "span_e"#); // torn tail
        let p = Profile::from_jsonl(&t);
        assert_eq!(p.skipped, 1);
        assert_eq!(p.unclosed, 1);
    }

    #[test]
    fn renders_tree_and_hotlist() {
        let p = Profile::from_jsonl(&sample_trace());
        let text = p.render(3);
        assert!(text.contains("calling-context tree"));
        assert!(text.contains("hotlist"));
        // Children render indented under the root, sorted by total.
        let tree_pos = |needle: &str| text.find(needle).expect(needle);
        assert!(tree_pos("table2") < tree_pos("  search"));
        assert!(tree_pos("  search") < tree_pos("  context"));
    }

    #[test]
    fn collapsed_export_uses_semicolons_and_microseconds() {
        let p = Profile::from_jsonl(&sample_trace());
        let collapsed = p.to_collapsed();
        assert!(collapsed.contains("table2;search 3000000"));
        assert!(collapsed.contains("table2;context 2000000"));
        assert!(collapsed.contains("table2 5000000"));
        for l in collapsed.lines() {
            let (_, weight) = l.rsplit_once(' ').expect("two columns");
            weight.parse::<u64>().expect("integer weight");
        }
    }
}
