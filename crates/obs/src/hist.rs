//! Log-scale histograms for latency- and count-shaped values.
//!
//! Buckets are powers of two: bucket `e` covers `[2^e, 2^(e+1))`, so
//! the whole dynamic range from nanoseconds to hours (or from 1 to
//! billions of Newton iterations) fits in a few dozen sparse buckets.
//! Non-positive values (a retry count of zero, say) land in a dedicated
//! `zeros` bucket instead of being dropped, so `count()` always equals
//! the number of `record` calls.

use std::collections::BTreeMap;

/// Exponent clamp: buckets span `[2^MIN_EXP, 2^(MAX_EXP+1))`.
const MIN_EXP: i32 = -64;
const MAX_EXP: i32 = 64;

/// A power-of-two-bucketed histogram.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Histogram {
    buckets: BTreeMap<i32, u64>,
    zeros: u64,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// The bucket exponent for a positive value: `e` with
/// `2^e <= v < 2^(e+1)`, computed so exact powers of two land in their
/// own bucket despite floating-point `log2` noise.
fn exponent(v: f64) -> i32 {
    let mut e = v.log2().floor() as i32;
    if 2f64.powi(e.saturating_add(1)) <= v {
        e += 1;
    } else if 2f64.powi(e) > v {
        e -= 1;
    }
    e.clamp(MIN_EXP, MAX_EXP)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, v: f64) {
        if !v.is_finite() {
            return;
        }
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
        if v > 0.0 {
            *self.buckets.entry(exponent(v)).or_insert(0) += 1;
        } else {
            self.zeros += 1;
        }
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.count += other.count;
        self.sum += other.sum;
        self.zeros += other.zeros;
        for (&e, &n) in &other.buckets {
            *self.buckets.entry(e).or_insert(0) += n;
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Smallest observation (0 when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Observations that were `<= 0` (the `zeros` bucket).
    pub fn zeros(&self) -> u64 {
        self.zeros
    }

    /// Non-empty buckets as `(exponent, count)`, ascending; the bucket
    /// covers `[2^exponent, 2^(exponent+1))`.
    pub fn buckets(&self) -> impl Iterator<Item = (i32, u64)> + '_ {
        self.buckets.iter().map(|(&e, &n)| (e, n))
    }

    /// Approximate quantile (`q` in `[0, 1]`): walks the buckets and
    /// returns the geometric midpoint of the one holding the target
    /// rank, clamped to the observed `[min, max]`. Exact for the zeros
    /// bucket. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank + 1 >= self.count {
            // The top rank is the maximum observation itself — exact.
            return self.max;
        }
        if rank < self.zeros {
            return self.min.min(0.0);
        }
        let mut seen = self.zeros;
        for (&e, &n) in &self.buckets {
            seen += n;
            if rank < seen {
                let mid = 2f64.powi(e) * std::f64::consts::SQRT_2;
                return mid.clamp(self.min.max(0.0), self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn boundaries_fall_in_their_own_bucket() {
        // 2^e must open bucket e, and the largest value below it must
        // close bucket e-1 — for exponents across the whole range.
        for e in [-30, -7, -1, 0, 1, 10, 40] {
            let lo = 2f64.powi(e);
            assert_eq!(exponent(lo), e, "2^{e}");
            assert_eq!(exponent(lo * 1.999), e, "just under 2^{}", e + 1);
            let below = f64::from_bits(lo.to_bits() - 1);
            assert_eq!(exponent(below), e - 1, "next below 2^{e}");
        }
        // Out-of-range magnitudes clamp instead of overflowing.
        assert_eq!(exponent(1.0e-300), MIN_EXP);
        assert_eq!(exponent(1.0e300), MAX_EXP);
    }

    #[test]
    fn records_and_summarizes() {
        let mut h = Histogram::new();
        for v in [1.0, 1.5, 3.0, 0.0, -2.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.zeros(), 2);
        assert_eq!(h.min(), -2.0);
        assert_eq!(h.max(), 100.0);
        assert!((h.sum() - 103.5).abs() < 1e-12);
        let buckets: Vec<_> = h.buckets().collect();
        assert_eq!(buckets, vec![(0, 2), (1, 1), (6, 1)]);
        h.record(f64::NAN); // ignored
        assert_eq!(h.count(), 6);
    }

    #[test]
    fn merge_is_additive_and_identity_on_empty() {
        let mut a = Histogram::new();
        a.record(2.0);
        a.record(8.0);
        let mut b = Histogram::new();
        b.record(0.0);
        b.record(2.5);
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.zeros(), 1);
        assert_eq!(merged.max(), 8.0);
        assert_eq!(merged.min(), 0.0);
        // Empty is the identity on both sides.
        let mut c = a.clone();
        c.merge(&Histogram::new());
        assert_eq!(c, a);
        let mut d = Histogram::new();
        d.merge(&a);
        assert_eq!(d, a);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record(f64::from(i));
        }
        let (q10, q50, q99) = (h.quantile(0.1), h.quantile(0.5), h.quantile(0.99));
        assert!(q10 <= q50 && q50 <= q99, "{q10} {q50} {q99}");
        assert!(q99 <= h.max());
        assert_eq!(h.quantile(1.0), h.max());
        // Median of 0..1000 is ~500; bucket resolution is a factor of 2.
        assert!((250.0..1000.0).contains(&q50), "median estimate {q50}");
    }
}
