//! Hierarchical wall-clock spans.
//!
//! A span is a scope guard: [`span("table2")`](span) starts the clock,
//! dropping the guard records the elapsed monotonic time into the
//! global registry under the span's *path* — the `/`-joined chain of
//! enclosing spans on the same thread, so `drv_ds` timed inside
//! `table2` aggregates under `table2/drv_ds` separately from the same
//! helper timed inside `fig4`. Start and end are also emitted to the
//! JSONL sink when one is installed.

use std::cell::RefCell;
use std::time::Instant;

use crate::json::Json;
use crate::metrics;
use crate::sink;

thread_local! {
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An active span; records on drop.
#[derive(Debug)]
pub struct Span {
    path: String,
    depth: usize,
    start: Instant,
    /// Thread solver tally at open, so `span_end` can attribute the
    /// Newton iterations / retries run inside the span to its path.
    tally0: metrics::SolverTally,
}

/// Opens a span named `name` nested under the calling thread's current
/// innermost span.
pub fn span(name: &str) -> Span {
    let (path, depth) = STACK
        .try_with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{parent}/{name}"),
                None => name.to_string(),
            };
            stack.push(path.clone());
            (path, stack.len())
        })
        .unwrap_or_else(|_| (name.to_string(), 0));
    if sink::sink_installed() {
        sink::emit(
            "span_start",
            vec![("path".to_string(), Json::Str(path.clone()))],
        );
    }
    Span {
        path,
        depth,
        start: Instant::now(),
        tally0: metrics::tally(),
    }
}

impl Span {
    /// The span's hierarchical path.
    pub fn path(&self) -> &str {
        &self.path
    }

    /// Seconds elapsed since the span opened.
    pub fn elapsed_s(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let seconds = self.elapsed_s();
        if self.depth > 0 {
            // Guards drop LIFO in normal control flow; truncating to
            // our depth also heals the stack if an inner guard leaked.
            let _ = STACK.try_with(|stack| {
                let mut stack = stack.borrow_mut();
                if stack.len() >= self.depth {
                    stack.truncate(self.depth - 1);
                }
            });
        }
        metrics::record_span(&self.path, seconds);
        if sink::sink_installed() {
            let work = metrics::tally().since(&self.tally0);
            sink::emit(
                "span_end",
                vec![
                    ("path".to_string(), Json::Str(self.path.clone())),
                    ("seconds".to_string(), Json::Num(seconds)),
                    ("iterations".to_string(), Json::Num(work.iterations as f64)),
                    ("retries".to_string(), Json::Num(work.retries as f64)),
                ],
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nesting_builds_slash_paths() {
        // Run in a dedicated thread: the stack is thread-local, so this
        // cannot interfere with (or be corrupted by) parallel tests.
        std::thread::spawn(|| {
            let outer = span("test.span.outer");
            assert_eq!(outer.path(), "test.span.outer");
            {
                let inner = span("mid");
                assert_eq!(inner.path(), "test.span.outer/mid");
                let leaf = span("leaf");
                assert_eq!(leaf.path(), "test.span.outer/mid/leaf");
            }
            // Siblings after a closed child nest under the outer again.
            let sibling = span("sib");
            assert_eq!(sibling.path(), "test.span.outer/sib");
        })
        .join()
        .unwrap();
        let snap = metrics::snapshot();
        assert_eq!(snap.spans["test.span.outer/mid"].count, 1);
        assert_eq!(snap.spans["test.span.outer/mid/leaf"].count, 1);
        assert_eq!(snap.spans["test.span.outer/sib"].count, 1);
        assert_eq!(snap.spans["test.span.outer"].count, 1);
    }

    #[test]
    fn elapsed_is_monotonic() {
        let s = span("test.span.elapsed");
        let a = s.elapsed_s();
        let b = s.elapsed_s();
        assert!(b >= a && a >= 0.0);
    }
}
