//! Per-experiment run manifests.
//!
//! A [`RunManifest`] is the machine-readable account an experiment
//! leaves behind: what was computed (artifact + config echo + coverage),
//! under which build (git-describe-style version), how long each phase
//! took (span timings), and how hard the solver worked (counters and
//! log-scale histograms, slowest points, retry hot spots). It
//! serializes to pretty JSON, parses back, and renders as a
//! human-readable summary for the CLI's `summary` subcommand.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::hist::Histogram;
use crate::json::{self, Json, JsonError};
use crate::metrics::{PointRecord, Snapshot};

/// Schema tag written into every manifest.
pub const MANIFEST_SCHEMA: &str = "lp-sram-suite/run-manifest/v1";

/// Gauge names the experiment executors publish coverage through (see
/// `drftest::campaign::publish_coverage`).
pub const GAUGE_COVERAGE_ATTEMPTED: &str = "campaign.coverage.attempted";
/// Completed-points gauge.
pub const GAUGE_COVERAGE_COMPLETED: &str = "campaign.coverage.completed";
/// Campaign wall-clock gauge, seconds.
pub const GAUGE_COVERAGE_ELAPSED_S: &str = "campaign.coverage.elapsed_s";

/// Aggregated timing of one span path (manifest form).
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Hierarchical span path, e.g. `table2/context`.
    pub path: String,
    /// Completed spans under the path.
    pub count: u64,
    /// Total wall-clock, seconds.
    pub total_s: f64,
    /// Slowest single span, seconds.
    pub max_s: f64,
}

/// One grid point's cost (manifest form).
#[derive(Debug, Clone, PartialEq)]
pub struct PointTiming {
    /// Stable point key.
    pub key: String,
    /// Wall-clock spent, seconds.
    pub seconds: f64,
    /// Solver retries needed.
    pub retries: u64,
    /// Newton iterations consumed.
    pub iterations: u64,
}

impl From<&PointRecord> for PointTiming {
    fn from(r: &PointRecord) -> Self {
        PointTiming {
            key: r.key.clone(),
            seconds: r.seconds,
            retries: r.retries,
            iterations: r.iterations,
        }
    }
}

/// A histogram reduced to its serializable summary.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSummary {
    /// Observations recorded.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Observations `<= 0`.
    pub zeros: u64,
    /// Non-empty power-of-two buckets as `(exponent, count)`.
    pub buckets: Vec<(i32, u64)>,
}

impl From<&Histogram> for HistogramSummary {
    fn from(h: &Histogram) -> Self {
        HistogramSummary {
            count: h.count(),
            sum: h.sum(),
            min: h.min(),
            max: h.max(),
            zeros: h.zeros(),
            buckets: h.buckets().collect(),
        }
    }
}

impl HistogramSummary {
    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate quantile over the serialized buckets, mirroring
    /// [`Histogram::quantile`]: geometric bucket midpoint clamped to
    /// the observed range, exact at the extremes. Returns 0 when
    /// empty.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * (self.count - 1) as f64).round() as u64;
        if rank + 1 >= self.count {
            return self.max;
        }
        if rank < self.zeros {
            return self.min.min(0.0);
        }
        let mut seen = self.zeros;
        for &(e, n) in &self.buckets {
            seen += n;
            if rank < seen {
                let mid = 2f64.powi(e) * std::f64::consts::SQRT_2;
                return mid.clamp(self.min.max(0.0), self.max);
            }
        }
        self.max
    }
}

/// One flight-recorder sample (manifest form; stages become owned
/// strings so a parsed manifest round-trips).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSampleSummary {
    /// Rescue-ladder stage label.
    pub stage: String,
    /// Whole-solve retry attempt (0-based).
    pub attempt: u64,
    /// Residual infinity-norm after the iteration.
    pub residual: f64,
    /// Damping factor applied.
    pub alpha: f64,
}

/// One retained convergence trajectory (manifest form).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Stable point key.
    pub key: String,
    /// `"ok"`, `"failed"`, `"budget-exhausted"` or `"panicked"`.
    pub outcome: String,
    /// Wall-clock spent on the point, seconds.
    pub seconds: f64,
    /// Total iterations recorded (the samples keep the last N).
    pub recorded: u64,
    /// Per-iteration samples, chronological.
    pub samples: Vec<TraceSampleSummary>,
}

impl From<&crate::metrics::TraceRecord> for TraceSummary {
    fn from(r: &crate::metrics::TraceRecord) -> Self {
        TraceSummary {
            key: r.key.clone(),
            outcome: r.outcome.clone(),
            seconds: r.seconds,
            recorded: r.recorded,
            samples: r
                .samples
                .iter()
                .map(|s| TraceSampleSummary {
                    stage: s.stage.to_string(),
                    attempt: u64::from(s.attempt),
                    residual: s.residual,
                    alpha: s.alpha,
                })
                .collect(),
        }
    }
}

/// Campaign completeness, with throughput.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageSummary {
    /// Grid points attempted.
    pub attempted: u64,
    /// Points that produced a result.
    pub completed: u64,
    /// Completion percentage.
    pub percent: f64,
    /// Campaign wall-clock, seconds.
    pub elapsed_s: f64,
    /// Completed points per second (0 when the clock never ran).
    pub points_per_sec: f64,
}

/// The end-of-run record.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Build identity, git-describe-style.
    pub version: String,
    /// The artifact regenerated (e.g. `table2`).
    pub artifact: String,
    /// Unix timestamp of manifest creation, seconds.
    pub created_unix: u64,
    /// Whole-run wall-clock, seconds.
    pub elapsed_s: f64,
    /// Echo of the configuration that produced the run.
    pub config: BTreeMap<String, String>,
    /// Per-phase span timings.
    pub phases: Vec<PhaseTiming>,
    /// Counters at end of run.
    pub counters: BTreeMap<String, u64>,
    /// Gauges at end of run.
    pub gauges: BTreeMap<String, f64>,
    /// Histograms at end of run.
    pub histograms: BTreeMap<String, HistogramSummary>,
    /// Campaign coverage, when the artifact ran one.
    pub coverage: Option<CoverageSummary>,
    /// Slowest grid points, descending.
    pub slowest: Vec<PointTiming>,
    /// Points needing the most solver retries, descending.
    pub retry_hot: Vec<PointTiming>,
    /// Retained convergence trajectories (failed points first, then
    /// slowest successes), when the flight recorder ran.
    pub traces: Vec<TraceSummary>,
}

/// The build identity: `git describe --always --dirty --tags` when a
/// repository is reachable, otherwise the crate version.
pub fn describe_version() -> String {
    let fallback = concat!("v", env!("CARGO_PKG_VERSION")).to_string();
    match std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
    {
        Ok(out) if out.status.success() => {
            let text = String::from_utf8_lossy(&out.stdout).trim().to_string();
            if text.is_empty() {
                fallback
            } else {
                format!("{fallback}-g{text}")
            }
        }
        _ => fallback,
    }
}

impl RunManifest {
    /// Builds a manifest from a metrics snapshot. Coverage is read from
    /// the `campaign.coverage.*` gauges when the executor published
    /// them.
    pub fn from_snapshot(
        artifact: &str,
        config: BTreeMap<String, String>,
        snapshot: &Snapshot,
        elapsed_s: f64,
    ) -> Self {
        let coverage = snapshot.gauges.get(GAUGE_COVERAGE_ATTEMPTED).map(|&att| {
            let completed = snapshot
                .gauges
                .get(GAUGE_COVERAGE_COMPLETED)
                .copied()
                .unwrap_or(0.0);
            let elapsed = snapshot
                .gauges
                .get(GAUGE_COVERAGE_ELAPSED_S)
                .copied()
                .unwrap_or(0.0);
            CoverageSummary {
                attempted: att as u64,
                completed: completed as u64,
                percent: if att > 0.0 {
                    completed / att * 100.0
                } else {
                    100.0
                },
                elapsed_s: elapsed,
                points_per_sec: if elapsed > 0.0 {
                    completed / elapsed
                } else {
                    0.0
                },
            }
        });
        RunManifest {
            version: describe_version(),
            artifact: artifact.to_string(),
            created_unix: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_secs())
                .unwrap_or(0),
            elapsed_s,
            config,
            phases: snapshot
                .spans
                .iter()
                .map(|(path, s)| PhaseTiming {
                    path: path.clone(),
                    count: s.count,
                    total_s: s.total_s,
                    max_s: s.max_s,
                })
                .collect(),
            counters: snapshot.counters.clone(),
            gauges: snapshot.gauges.clone(),
            histograms: snapshot
                .histograms
                .iter()
                .map(|(name, h)| (name.clone(), HistogramSummary::from(h)))
                .collect(),
            coverage,
            slowest: snapshot.slowest.iter().map(PointTiming::from).collect(),
            retry_hot: snapshot.retry_hot.iter().map(PointTiming::from).collect(),
            traces: snapshot.traces.iter().map(TraceSummary::from).collect(),
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json_string(&self) -> String {
        let hist_json = |h: &HistogramSummary| {
            Json::obj([
                ("count".into(), Json::Num(h.count as f64)),
                ("sum".into(), Json::Num(h.sum)),
                ("min".into(), Json::Num(h.min)),
                ("max".into(), Json::Num(h.max)),
                ("zeros".into(), Json::Num(h.zeros as f64)),
                (
                    "buckets".into(),
                    Json::Arr(
                        h.buckets
                            .iter()
                            .map(|&(e, n)| {
                                Json::Arr(vec![Json::Num(f64::from(e)), Json::Num(n as f64)])
                            })
                            .collect(),
                    ),
                ),
            ])
        };
        let point_json = |p: &PointTiming| {
            Json::obj([
                ("key".into(), Json::Str(p.key.clone())),
                ("seconds".into(), Json::Num(p.seconds)),
                ("retries".into(), Json::Num(p.retries as f64)),
                ("iterations".into(), Json::Num(p.iterations as f64)),
            ])
        };
        let doc = Json::obj([
            ("schema".into(), Json::Str(MANIFEST_SCHEMA.into())),
            ("version".into(), Json::Str(self.version.clone())),
            ("artifact".into(), Json::Str(self.artifact.clone())),
            ("created_unix".into(), Json::Num(self.created_unix as f64)),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            (
                "config".into(),
                Json::obj(
                    self.config
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Str(v.clone()))),
                ),
            ),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("path".into(), Json::Str(p.path.clone())),
                                ("count".into(), Json::Num(p.count as f64)),
                                ("total_s".into(), Json::Num(p.total_s)),
                                ("max_s".into(), Json::Num(p.max_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v as f64))),
                ),
            ),
            (
                "gauges".into(),
                Json::obj(self.gauges.iter().map(|(k, &v)| (k.clone(), Json::Num(v)))),
            ),
            (
                "histograms".into(),
                Json::obj(
                    self.histograms
                        .iter()
                        .map(|(k, h)| (k.clone(), hist_json(h))),
                ),
            ),
            (
                "coverage".into(),
                match &self.coverage {
                    None => Json::Null,
                    Some(c) => Json::obj([
                        ("attempted".into(), Json::Num(c.attempted as f64)),
                        ("completed".into(), Json::Num(c.completed as f64)),
                        ("percent".into(), Json::Num(c.percent)),
                        ("elapsed_s".into(), Json::Num(c.elapsed_s)),
                        ("points_per_sec".into(), Json::Num(c.points_per_sec)),
                    ]),
                },
            ),
            (
                "slowest".into(),
                Json::Arr(self.slowest.iter().map(point_json).collect()),
            ),
            (
                "retry_hot".into(),
                Json::Arr(self.retry_hot.iter().map(point_json).collect()),
            ),
            (
                "traces".into(),
                Json::Arr(
                    self.traces
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("key".into(), Json::Str(t.key.clone())),
                                ("outcome".into(), Json::Str(t.outcome.clone())),
                                ("seconds".into(), Json::Num(t.seconds)),
                                ("recorded".into(), Json::Num(t.recorded as f64)),
                                (
                                    "samples".into(),
                                    // Compact row form: [stage, attempt,
                                    // residual, alpha] per iteration.
                                    Json::Arr(
                                        t.samples
                                            .iter()
                                            .map(|s| {
                                                Json::Arr(vec![
                                                    Json::Str(s.stage.clone()),
                                                    Json::Num(s.attempt as f64),
                                                    Json::Num(s.residual),
                                                    Json::Num(s.alpha),
                                                ])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        doc.to_pretty()
    }

    /// Parses a manifest back from its JSON form.
    ///
    /// # Errors
    ///
    /// [`JsonError`] on malformed JSON or a document that is not a
    /// manifest.
    pub fn parse(text: &str) -> Result<RunManifest, JsonError> {
        let doc = json::parse(text)?;
        let bad = |msg: &str| JsonError {
            pos: 0,
            msg: msg.to_string(),
        };
        if doc.get("schema").and_then(Json::as_str) != Some(MANIFEST_SCHEMA) {
            return Err(bad("missing or unknown manifest schema tag"));
        }
        let str_field = |key: &str| -> Result<String, JsonError> {
            doc.get(key)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| bad(&format!("missing string field `{key}`")))
        };
        let num_field = |key: &str| -> Result<f64, JsonError> {
            doc.get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| bad(&format!("missing numeric field `{key}`")))
        };
        let parse_point = |v: &Json| -> Result<PointTiming, JsonError> {
            Ok(PointTiming {
                key: v
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("point without key"))?
                    .to_string(),
                seconds: v.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                retries: v.get("retries").and_then(Json::as_u64).unwrap_or(0),
                iterations: v.get("iterations").and_then(Json::as_u64).unwrap_or(0),
            })
        };
        let points = |key: &str| -> Result<Vec<PointTiming>, JsonError> {
            doc.get(key)
                .and_then(Json::as_arr)
                .unwrap_or(&[])
                .iter()
                .map(parse_point)
                .collect()
        };
        let mut histograms = BTreeMap::new();
        if let Some(pairs) = doc.get("histograms").and_then(Json::as_obj) {
            for (name, h) in pairs {
                let mut buckets = Vec::new();
                for b in h.get("buckets").and_then(Json::as_arr).unwrap_or(&[]) {
                    let pair = b.as_arr().ok_or_else(|| bad("bucket is not a pair"))?;
                    if pair.len() != 2 {
                        return Err(bad("bucket is not a pair"));
                    }
                    buckets.push((
                        pair[0].as_f64().ok_or_else(|| bad("bad bucket exponent"))? as i32,
                        pair[1].as_u64().ok_or_else(|| bad("bad bucket count"))?,
                    ));
                }
                histograms.insert(
                    name.clone(),
                    HistogramSummary {
                        count: h.get("count").and_then(Json::as_u64).unwrap_or(0),
                        sum: h.get("sum").and_then(Json::as_f64).unwrap_or(0.0),
                        min: h.get("min").and_then(Json::as_f64).unwrap_or(0.0),
                        max: h.get("max").and_then(Json::as_f64).unwrap_or(0.0),
                        zeros: h.get("zeros").and_then(Json::as_u64).unwrap_or(0),
                        buckets,
                    },
                );
            }
        }
        let mut phases = Vec::new();
        for p in doc.get("phases").and_then(Json::as_arr).unwrap_or(&[]) {
            phases.push(PhaseTiming {
                path: p
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("phase without path"))?
                    .to_string(),
                count: p.get("count").and_then(Json::as_u64).unwrap_or(0),
                total_s: p.get("total_s").and_then(Json::as_f64).unwrap_or(0.0),
                max_s: p.get("max_s").and_then(Json::as_f64).unwrap_or(0.0),
            });
        }
        let str_map = |key: &str| -> BTreeMap<String, String> {
            doc.get(key)
                .and_then(Json::as_obj)
                .unwrap_or(&[])
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect()
        };
        let coverage = match doc.get("coverage") {
            None | Some(Json::Null) => None,
            Some(c) => Some(CoverageSummary {
                attempted: c.get("attempted").and_then(Json::as_u64).unwrap_or(0),
                completed: c.get("completed").and_then(Json::as_u64).unwrap_or(0),
                percent: c.get("percent").and_then(Json::as_f64).unwrap_or(0.0),
                elapsed_s: c.get("elapsed_s").and_then(Json::as_f64).unwrap_or(0.0),
                points_per_sec: c
                    .get("points_per_sec")
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0),
            }),
        };
        // Older v1 manifests predate traces; missing → empty.
        let mut traces = Vec::new();
        for t in doc.get("traces").and_then(Json::as_arr).unwrap_or(&[]) {
            let mut samples = Vec::new();
            for s in t.get("samples").and_then(Json::as_arr).unwrap_or(&[]) {
                let row = s.as_arr().ok_or_else(|| bad("trace sample is not a row"))?;
                if row.len() != 4 {
                    return Err(bad("trace sample is not a 4-element row"));
                }
                samples.push(TraceSampleSummary {
                    stage: row[0]
                        .as_str()
                        .ok_or_else(|| bad("bad trace stage"))?
                        .to_string(),
                    attempt: row[1].as_u64().ok_or_else(|| bad("bad trace attempt"))?,
                    residual: row[2].as_f64().ok_or_else(|| bad("bad trace residual"))?,
                    alpha: row[3].as_f64().ok_or_else(|| bad("bad trace alpha"))?,
                });
            }
            traces.push(TraceSummary {
                key: t
                    .get("key")
                    .and_then(Json::as_str)
                    .ok_or_else(|| bad("trace without key"))?
                    .to_string(),
                outcome: t
                    .get("outcome")
                    .and_then(Json::as_str)
                    .unwrap_or("ok")
                    .to_string(),
                seconds: t.get("seconds").and_then(Json::as_f64).unwrap_or(0.0),
                recorded: t.get("recorded").and_then(Json::as_u64).unwrap_or(0),
                samples,
            });
        }
        Ok(RunManifest {
            version: str_field("version")?,
            artifact: str_field("artifact")?,
            created_unix: num_field("created_unix")? as u64,
            elapsed_s: num_field("elapsed_s")?,
            config: str_map("config"),
            phases,
            counters: doc
                .get("counters")
                .and_then(Json::as_obj)
                .unwrap_or(&[])
                .iter()
                .filter_map(|(k, v)| v.as_u64().map(|n| (k.clone(), n)))
                .collect(),
            gauges: doc
                .get("gauges")
                .and_then(Json::as_obj)
                .unwrap_or(&[])
                .iter()
                .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
                .collect(),
            histograms,
            coverage,
            slowest: points("slowest")?,
            retry_hot: points("retry_hot")?,
            traces,
        })
    }

    /// Renders the manifest as a human-readable summary: header,
    /// coverage and throughput, per-phase timings, counters, histogram
    /// sketches, top-`top_k` slowest points and retry hot spots.
    pub fn render_summary(&self, top_k: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "run manifest — {} ({}), {}",
            self.artifact,
            self.version,
            format_seconds(self.elapsed_s)
        );
        if let Some(c) = &self.coverage {
            let _ = writeln!(
                out,
                "coverage: {}/{} grid points ({:.1}%) — {} campaign, {:.2} points/s",
                c.completed,
                c.attempted,
                c.percent,
                format_seconds(c.elapsed_s),
                c.points_per_sec
            );
        }
        if !self.config.is_empty() {
            let pairs: Vec<String> = self
                .config
                .iter()
                .map(|(k, v)| format!("{k}={v}"))
                .collect();
            let _ = writeln!(out, "config: {}", pairs.join(" "));
        }
        if !self.phases.is_empty() {
            let _ = writeln!(out, "\nphases (wall-clock by span path):");
            let mut phases: Vec<&PhaseTiming> = self.phases.iter().collect();
            phases.sort_by(|a, b| b.total_s.partial_cmp(&a.total_s).expect("finite"));
            for p in phases {
                let _ = writeln!(
                    out,
                    "  {:<40} ×{:<7} total {:>10}  max {:>10}",
                    p.path,
                    p.count,
                    format_seconds(p.total_s),
                    format_seconds(p.max_s)
                );
            }
        }
        if !self.counters.is_empty() {
            let _ = writeln!(out, "\ncounters:");
            for (name, value) in &self.counters {
                let _ = writeln!(out, "  {name:<40} {value}");
            }
        }
        if !self.histograms.is_empty() {
            let _ = writeln!(out, "\nhistograms:");
            for (name, h) in &self.histograms {
                let _ = writeln!(
                    out,
                    "  {name}: n={} mean={} min={} max={}",
                    h.count,
                    compact(h.mean()),
                    compact(h.min),
                    compact(h.max)
                );
                let _ = write!(out, "{}", sketch(h));
            }
        }
        render_points(&mut out, "slowest points", &self.slowest, top_k, |p| {
            format!(
                "{:<44} {:>10}  {} retries, {} iterations",
                p.key,
                format_seconds(p.seconds),
                p.retries,
                p.iterations
            )
        });
        render_points(&mut out, "retry hot spots", &self.retry_hot, top_k, |p| {
            format!(
                "{:<44} {} retries  {:>10}",
                p.key,
                p.retries,
                format_seconds(p.seconds)
            )
        });
        out
    }

    /// Renders the retained convergence trajectories (`summary
    /// --traces`): per point, a header line and the last
    /// `samples_per_trace` recorded iterations.
    pub fn render_traces(&self, samples_per_trace: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "\nconvergence traces:");
        if self.traces.is_empty() {
            let _ = writeln!(
                out,
                "  (none recorded — run with --trace or --metrics to enable the flight recorder)"
            );
            return out;
        }
        for t in &self.traces {
            let _ = writeln!(
                out,
                "  {} — {} after {} iterations, {}",
                t.key,
                t.outcome,
                t.recorded,
                format_seconds(t.seconds)
            );
            let shown = t.samples.len().min(samples_per_trace);
            let skipped = t.recorded as usize - shown;
            if skipped > 0 {
                let _ = writeln!(out, "    … {skipped} earlier iterations");
            }
            let first_shown = t.recorded as usize - shown;
            for (i, s) in t.samples[t.samples.len() - shown..].iter().enumerate() {
                let _ = writeln!(
                    out,
                    "    #{:<6} {:<18} attempt {}  residual {:>10}  alpha {:.3}",
                    first_shown + i,
                    s.stage,
                    s.attempt,
                    compact(s.residual),
                    s.alpha
                );
            }
        }
        out
    }

    /// Machine-readable digest of the manifest (`summary --json`):
    /// the render_summary content as structured JSON, with derived
    /// histogram statistics (mean, p50/p90/p99) precomputed.
    pub fn summary_json(&self, top_k: usize) -> Json {
        let point_json = |p: &PointTiming| {
            Json::obj([
                ("key".into(), Json::Str(p.key.clone())),
                ("seconds".into(), Json::Num(p.seconds)),
                ("retries".into(), Json::Num(p.retries as f64)),
                ("iterations".into(), Json::Num(p.iterations as f64)),
            ])
        };
        Json::obj([
            (
                "schema".into(),
                Json::Str("lp-sram-suite/summary/v1".into()),
            ),
            ("artifact".into(), Json::Str(self.artifact.clone())),
            ("version".into(), Json::Str(self.version.clone())),
            ("elapsed_s".into(), Json::Num(self.elapsed_s)),
            (
                "coverage".into(),
                match &self.coverage {
                    None => Json::Null,
                    Some(c) => Json::obj([
                        ("attempted".into(), Json::Num(c.attempted as f64)),
                        ("completed".into(), Json::Num(c.completed as f64)),
                        ("percent".into(), Json::Num(c.percent)),
                        ("elapsed_s".into(), Json::Num(c.elapsed_s)),
                        ("points_per_sec".into(), Json::Num(c.points_per_sec)),
                    ]),
                },
            ),
            (
                "phases".into(),
                Json::Arr(
                    self.phases
                        .iter()
                        .map(|p| {
                            Json::obj([
                                ("path".into(), Json::Str(p.path.clone())),
                                ("count".into(), Json::Num(p.count as f64)),
                                ("total_s".into(), Json::Num(p.total_s)),
                                ("max_s".into(), Json::Num(p.max_s)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters".into(),
                Json::obj(
                    self.counters
                        .iter()
                        .map(|(k, &v)| (k.clone(), Json::Num(v as f64))),
                ),
            ),
            (
                "histograms".into(),
                Json::obj(self.histograms.iter().map(|(k, h)| {
                    (
                        k.clone(),
                        Json::obj([
                            ("count".into(), Json::Num(h.count as f64)),
                            ("mean".into(), Json::Num(h.mean())),
                            ("min".into(), Json::Num(h.min)),
                            ("max".into(), Json::Num(h.max)),
                            ("p50".into(), Json::Num(h.quantile(0.50))),
                            ("p90".into(), Json::Num(h.quantile(0.90))),
                            ("p99".into(), Json::Num(h.quantile(0.99))),
                        ]),
                    )
                })),
            ),
            (
                "slowest".into(),
                Json::Arr(self.slowest.iter().take(top_k).map(point_json).collect()),
            ),
            (
                "retry_hot".into(),
                Json::Arr(self.retry_hot.iter().take(top_k).map(point_json).collect()),
            ),
            (
                "traces".into(),
                Json::Arr(
                    self.traces
                        .iter()
                        .map(|t| {
                            Json::obj([
                                ("key".into(), Json::Str(t.key.clone())),
                                ("outcome".into(), Json::Str(t.outcome.clone())),
                                ("seconds".into(), Json::Num(t.seconds)),
                                ("recorded".into(), Json::Num(t.recorded as f64)),
                                ("retained".into(), Json::Num(t.samples.len() as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

fn render_points(
    out: &mut String,
    title: &str,
    points: &[PointTiming],
    top_k: usize,
    line: impl Fn(&PointTiming) -> String,
) {
    let _ = writeln!(out, "\n{title}:");
    if points.is_empty() {
        let _ = writeln!(out, "  (none recorded)");
        return;
    }
    for p in points.iter().take(top_k) {
        let _ = writeln!(out, "  {}", line(p));
    }
    if points.len() > top_k {
        let _ = writeln!(out, "  … {} more", points.len() - top_k);
    }
}

/// ASCII sketch of a histogram: one bar per non-empty bucket, scaled to
/// the fullest bucket.
fn sketch(h: &HistogramSummary) -> String {
    const WIDTH: usize = 30;
    let mut out = String::new();
    let tallest = h
        .buckets
        .iter()
        .map(|&(_, n)| n)
        .max()
        .unwrap_or(0)
        .max(h.zeros);
    if tallest == 0 {
        return out;
    }
    let bar = |n: u64| {
        let len = ((n as f64 / tallest as f64) * WIDTH as f64).ceil() as usize;
        "#".repeat(len.max(1))
    };
    if h.zeros > 0 {
        let _ = writeln!(out, "    {:>22} {:<WIDTH$} {}", "0", bar(h.zeros), h.zeros);
    }
    for &(e, n) in &h.buckets {
        let lo = 2f64.powi(e);
        let hi = 2f64.powi(e + 1);
        let label = format!("[{}, {})", compact(lo), compact(hi));
        let _ = writeln!(out, "    {label:>22} {:<WIDTH$} {n}", bar(n));
    }
    out
}

/// Compact float rendering (`%.4g`-style): fixed point in a sane
/// range, exponential outside it.
fn compact(v: f64) -> String {
    let a = v.abs();
    if v == 0.0 {
        "0".to_string()
    } else if (1.0e-3..1.0e6).contains(&a) {
        let s = format!("{v:.4}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    } else {
        format!("{v:.3e}")
    }
}

/// Human time formatting: µs/ms/s as appropriate.
fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1.0e-3 {
        format!("{:.2} ms", s * 1.0e3)
    } else {
        format!("{:.1} µs", s * 1.0e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> RunManifest {
        let mut h = Histogram::new();
        for v in [3.0, 17.0, 200.0, 0.0] {
            h.record(v);
        }
        RunManifest {
            version: "v0.1.0-gabc123".into(),
            artifact: "table2".into(),
            created_unix: 1_700_000_000,
            elapsed_s: 12.5,
            config: BTreeMap::from([("mode".to_string(), "quick".to_string())]),
            phases: vec![PhaseTiming {
                path: "table2/context".into(),
                count: 4,
                total_s: 3.25,
                max_s: 1.5,
            }],
            counters: BTreeMap::from([("anasim.solve.count".to_string(), 977_u64)]),
            gauges: BTreeMap::from([("campaign.coverage.attempted".to_string(), 4.0)]),
            histograms: BTreeMap::from([(
                "anasim.solve.iterations".to_string(),
                HistogramSummary::from(&h),
            )]),
            coverage: Some(CoverageSummary {
                attempted: 4,
                completed: 3,
                percent: 75.0,
                elapsed_s: 10.0,
                points_per_sec: 0.3,
            }),
            slowest: vec![PointTiming {
                key: "df16/cs1".into(),
                seconds: 2.0,
                retries: 1,
                iterations: 400,
            }],
            retry_hot: vec![PointTiming {
                key: "df16/cs1".into(),
                seconds: 2.0,
                retries: 1,
                iterations: 400,
            }],
            traces: vec![TraceSummary {
                key: "df16/cs1 @ fs/1.0V/125C".into(),
                outcome: "budget-exhausted".into(),
                seconds: 4.5,
                recorded: 1200,
                samples: vec![
                    TraceSampleSummary {
                        stage: "plain".into(),
                        attempt: 0,
                        residual: 1.25e-3,
                        alpha: 1.0,
                    },
                    TraceSampleSummary {
                        stage: "gmin-stepping".into(),
                        attempt: 1,
                        residual: 6.0e-4,
                        alpha: 0.5,
                    },
                ],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_lossless() {
        let m = sample();
        let text = m.to_json_string();
        let back = RunManifest::parse(&text).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn rejects_non_manifest_documents() {
        assert!(RunManifest::parse("{}").is_err());
        assert!(RunManifest::parse("not json").is_err());
        assert!(RunManifest::parse(r#"{"schema": "something/else"}"#).is_err());
    }

    #[test]
    fn summary_renders_every_section() {
        let text = sample().render_summary(10);
        for needle in [
            "run manifest — table2",
            "coverage: 3/4",
            "mode=quick",
            "table2/context",
            "anasim.solve.count",
            "anasim.solve.iterations",
            "slowest points",
            "retry hot spots",
            "df16/cs1",
            "#",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn empty_point_lists_render_placeholder() {
        let mut m = sample();
        m.slowest.clear();
        m.retry_hot.clear();
        m.coverage = None;
        let text = m.render_summary(5);
        assert!(text.contains("(none recorded)"));
        assert!(!text.contains("coverage:"));
    }

    #[test]
    fn traces_render_and_survive_missing_field() {
        let m = sample();
        let text = m.render_traces(10);
        assert!(text.contains("df16/cs1 @ fs/1.0V/125C"));
        assert!(text.contains("budget-exhausted after 1200 iterations"));
        assert!(text.contains("gmin-stepping"));
        assert!(text.contains("… 1198 earlier iterations"));
        // A pre-traces manifest parses with an empty list.
        let mut doc = m.to_json_string();
        let cut = doc.find("\"traces\"").expect("traces serialized");
        doc.truncate(cut);
        doc.truncate(doc.rfind(',').expect("trailing comma"));
        doc.push_str("\n}");
        let back = RunManifest::parse(&doc).expect("parses without traces");
        assert!(back.traces.is_empty());
        assert!(back.render_traces(10).contains("(none recorded"));
    }

    #[test]
    fn summary_json_is_parseable_and_has_derived_stats() {
        let m = sample();
        let doc = crate::json::parse(&m.summary_json(5).to_pretty()).expect("valid JSON");
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("lp-sram-suite/summary/v1")
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("anasim.solve.iterations"))
            .expect("histogram digest");
        assert_eq!(h.get("count").and_then(Json::as_u64), Some(4));
        assert!(h.get("p50").and_then(Json::as_f64).is_some());
        let traces = doc.get("traces").and_then(Json::as_arr).unwrap();
        assert_eq!(traces.len(), 1);
        assert_eq!(
            traces[0].get("outcome").and_then(Json::as_str),
            Some("budget-exhausted")
        );
        let c = doc.get("coverage").expect("coverage");
        assert_eq!(c.get("completed").and_then(Json::as_u64), Some(3));
    }

    #[test]
    fn histogram_summary_quantiles_match_the_histogram() {
        let mut h = Histogram::new();
        for i in 0..1000 {
            h.record(f64::from(i));
        }
        let s = HistogramSummary::from(&h);
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile(q), h.quantile(q), "q={q}");
        }
    }

    #[test]
    fn describe_version_is_nonempty() {
        let v = describe_version();
        assert!(v.starts_with('v'), "{v}");
    }

    #[test]
    fn from_snapshot_reads_coverage_gauges() {
        let r = crate::metrics::Registry::new();
        r.gauge_set(GAUGE_COVERAGE_ATTEMPTED, 10.0);
        r.gauge_set(GAUGE_COVERAGE_COMPLETED, 8.0);
        r.gauge_set(GAUGE_COVERAGE_ELAPSED_S, 4.0);
        r.counter_add("c", 1);
        r.hist_record("h", 2.0);
        r.record_span("p", 0.25);
        let m = RunManifest::from_snapshot("fig4", BTreeMap::new(), &r.snapshot(), 5.0);
        let c = m.coverage.expect("gauges produce coverage");
        assert_eq!(c.attempted, 10);
        assert_eq!(c.completed, 8);
        assert!((c.percent - 80.0).abs() < 1e-9);
        assert!((c.points_per_sec - 2.0).abs() < 1e-9);
        assert_eq!(m.phases.len(), 1);
        assert_eq!(m.counters["c"], 1);
        assert!(m.histograms.contains_key("h"));
    }
}
