//! Run comparison & regression engine.
//!
//! [`MetricSet::from_json_str`] flattens either a
//! [`RunManifest`](crate::manifest::RunManifest) or a
//! `lp-sram-suite/bench-baseline/v3` document into a flat
//! `name → value` map of deterministic-ish metrics;
//! [`Report::build`] diffs two such sets and applies
//! [`Threshold`]s (`--fail-over iterations_total=10%`) to decide the
//! CI verdict. Exit-code contract:
//!
//! - `0` — no thresholded metric grew past its allowance,
//! - `1` — at least one did (or a thresholded metric disappeared),
//! - `2` — usage or parse error (decided by the CLI caller).
//!
//! Only *growth* fails a threshold: an iteration count falling 15 %
//! is an improvement, not a regression. Volatile provenance fields
//! (version, timestamps, config echo, per-phase wall-clock) are
//! excluded from the flattening so comparing a file against itself
//! always yields an empty delta.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::json::{self, Json};
use crate::manifest::MANIFEST_SCHEMA;

/// Schema tag of legacy bench-baseline documents (four seeding
/// variants, dense solver only). Still accepted for comparison so old
/// committed baselines keep working.
pub const BENCH_SCHEMA: &str = "lp-sram-suite/bench-baseline/v3";

/// Schema tag of current bench-baseline documents (written by
/// `bench --bin table2_baseline`): adds the `rank1_chained` variant,
/// per-variant `rank1` flags with `cache_hits`/`cache_misses`/
/// `rank1_applied`/`rank1_fallbacks` solver counters, and the
/// `sparse_ladder` pseudo-variant (`unknowns`/`iterations`/`lu_nnz`).
pub const BENCH_SCHEMA_V4: &str = "lp-sram-suite/bench-baseline/v4";

/// Schema tag of current bench-baseline documents: adds the
/// `full_array` pseudo-variant benchmarking the hierarchical
/// block-Schur array solve against the monolithic sparse path
/// (`interface_unknowns`, `schur_blocks_shared`/`schur_blocks_rebuilt`,
/// `factorized_unknowns_schur`/`factorized_unknowns_monolithic`, and
/// the headline `reduction_ratio`).
pub const BENCH_SCHEMA_V5: &str = "lp-sram-suite/bench-baseline/v5";

/// Schema tag of the JSON compare report.
pub const COMPARE_SCHEMA: &str = "lp-sram-suite/compare/v1";

/// A flat, comparable view of one run document.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricSet {
    /// Which schema the document carried.
    pub schema: String,
    /// Flattened dot-separated metric names to values.
    pub metrics: BTreeMap<String, f64>,
}

impl MetricSet {
    /// Flattens a manifest or bench-baseline JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable message on malformed JSON or an unsupported
    /// schema.
    pub fn from_json_str(text: &str) -> Result<MetricSet, String> {
        let doc = json::parse(text).map_err(|e| e.to_string())?;
        match doc.get("schema").and_then(Json::as_str) {
            Some(MANIFEST_SCHEMA) => Ok(flatten_manifest(&doc)),
            Some(schema @ (BENCH_SCHEMA | BENCH_SCHEMA_V4 | BENCH_SCHEMA_V5)) => {
                Ok(flatten_bench(&doc, schema))
            }
            Some(other) => Err(format!("unsupported schema `{other}`")),
            None => Err("document has no `schema` tag".to_string()),
        }
    }
}

fn flatten_manifest(doc: &Json) -> MetricSet {
    let mut metrics = BTreeMap::new();
    if let Some(pairs) = doc.get("counters").and_then(Json::as_obj) {
        for (name, v) in pairs {
            if let Some(n) = v.as_f64() {
                metrics.insert(name.clone(), n);
            }
        }
    }
    if let Some(pairs) = doc.get("histograms").and_then(Json::as_obj) {
        for (name, h) in pairs {
            for field in ["count", "sum", "max"] {
                if let Some(n) = h.get(field).and_then(Json::as_f64) {
                    metrics.insert(format!("{name}.{field}"), n);
                }
            }
            let count = h.get("count").and_then(Json::as_f64).unwrap_or(0.0);
            let sum = h.get("sum").and_then(Json::as_f64).unwrap_or(0.0);
            if count > 0.0 {
                metrics.insert(format!("{name}.mean"), sum / count);
            }
        }
    }
    if let Some(c) = doc.get("coverage").filter(|c| !matches!(c, Json::Null)) {
        for field in ["attempted", "completed", "elapsed_s", "points_per_sec"] {
            if let Some(n) = c.get(field).and_then(Json::as_f64) {
                metrics.insert(format!("coverage.{field}"), n);
            }
        }
    }
    if let Some(n) = doc.get("elapsed_s").and_then(Json::as_f64) {
        metrics.insert("elapsed_s".to_string(), n);
    }
    MetricSet {
        schema: MANIFEST_SCHEMA.to_string(),
        metrics,
    }
}

fn flatten_bench(doc: &Json, schema: &str) -> MetricSet {
    let mut metrics = BTreeMap::new();
    if let Some(variants) = doc.get("variants").and_then(Json::as_obj) {
        for (variant, v) in variants {
            for field in [
                "points_attempted",
                "points_completed",
                "elapsed_s",
                "points_per_sec",
                "allocs_per_iteration",
                // v4 `sparse_ladder` pseudo-variant fields.
                "unknowns",
                "iterations",
                "lu_nnz",
                // v5 `full_array` pseudo-variant fields.
                "interface_unknowns",
                "schur_blocks_shared",
                "schur_blocks_rebuilt",
                "factorized_unknowns_schur",
                "factorized_unknowns_monolithic",
                "reduction_ratio",
            ] {
                if let Some(n) = v.get(field).and_then(Json::as_f64) {
                    metrics.insert(format!("{variant}.{field}"), n);
                }
            }
            if let Some(solver) = v.get("solver").and_then(Json::as_obj) {
                for (name, sv) in solver {
                    if let Some(n) = sv.as_f64() {
                        metrics.insert(format!("{variant}.solver.{name}"), n);
                    }
                }
            }
        }
    }
    MetricSet {
        schema: schema.to_string(),
        metrics,
    }
}

/// One `--fail-over name=pct%` allowance.
#[derive(Debug, Clone, PartialEq)]
pub struct Threshold {
    /// Full flattened metric name, or a bare last segment
    /// (`iterations_total` matches `<variant>.solver.iterations_total`
    /// in every variant).
    pub key: String,
    /// Allowed relative growth as a fraction (`10%` → `0.10`).
    pub max_growth: f64,
}

impl Threshold {
    /// Parses `name=pct%` (the `%` is optional).
    ///
    /// # Errors
    ///
    /// A usage message when the spec is malformed.
    pub fn parse(spec: &str) -> Result<Threshold, String> {
        let (key, pct) = spec
            .split_once('=')
            .ok_or_else(|| format!("`{spec}`: expected name=percent%"))?;
        let pct = pct.trim().trim_end_matches('%');
        let value: f64 = pct
            .parse()
            .map_err(|_| format!("`{spec}`: `{pct}` is not a number"))?;
        if key.is_empty() || !value.is_finite() || value < 0.0 {
            return Err(format!(
                "`{spec}`: expected name=percent% with percent >= 0"
            ));
        }
        Ok(Threshold {
            key: key.to_string(),
            max_growth: value / 100.0,
        })
    }

    /// Whether this threshold governs the named metric.
    pub fn matches(&self, metric: &str) -> bool {
        metric == self.key || metric.rsplit('.').next() == Some(self.key.as_str())
    }
}

/// One metric that differs between the two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Flattened metric name.
    pub name: String,
    /// Value in the old (baseline) document.
    pub old: f64,
    /// Value in the new document.
    pub new: f64,
    /// Relative change `(new - old) / |old|`; infinite when the
    /// baseline was zero.
    pub rel: f64,
    /// Set when a threshold governs this metric and its growth
    /// exceeded the allowance.
    pub failed: bool,
}

/// The comparison verdict over two metric sets.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Metrics that changed, sorted by name.
    pub deltas: Vec<Delta>,
    /// Metrics present only in the baseline.
    pub missing_in_new: Vec<String>,
    /// Metrics present only in the new document.
    pub missing_in_old: Vec<String>,
    /// Thresholded metrics that vanished from the new document (a
    /// missing bench variant fails its thresholds).
    pub failed_missing: Vec<String>,
    /// Metrics compared in total.
    pub compared: usize,
}

impl Report {
    /// Diffs `old` against `new` under the given thresholds.
    pub fn build(old: &MetricSet, new: &MetricSet, thresholds: &[Threshold]) -> Report {
        let mut report = Report::default();
        let allowance = |name: &str| {
            thresholds
                .iter()
                .filter(|t| t.matches(name))
                .map(|t| t.max_growth)
                .min_by(|a, b| a.partial_cmp(b).expect("finite"))
        };
        for (name, &old_v) in &old.metrics {
            match new.metrics.get(name) {
                None => {
                    if allowance(name).is_some() {
                        report.failed_missing.push(name.clone());
                    }
                    report.missing_in_new.push(name.clone());
                }
                Some(&new_v) => {
                    report.compared += 1;
                    if old_v == new_v {
                        continue;
                    }
                    let rel = if old_v != 0.0 {
                        (new_v - old_v) / old_v.abs()
                    } else if new_v > old_v {
                        f64::INFINITY
                    } else {
                        f64::NEG_INFINITY
                    };
                    let failed = matches!(allowance(name), Some(max) if rel > max);
                    report.deltas.push(Delta {
                        name: name.clone(),
                        old: old_v,
                        new: new_v,
                        rel,
                        failed,
                    });
                }
            }
        }
        for name in new.metrics.keys() {
            if !old.metrics.contains_key(name) {
                report.missing_in_old.push(name.clone());
            }
        }
        report
    }

    /// Whether any thresholded metric regressed.
    pub fn failed(&self) -> bool {
        !self.failed_missing.is_empty() || self.deltas.iter().any(|d| d.failed)
    }

    /// The CLI exit code: 0 pass, 1 regression. (2, usage/parse
    /// error, is decided by the caller before a report exists.)
    pub fn exit_code(&self) -> i32 {
        i32::from(self.failed())
    }

    /// Stable human-readable report. With `all` false, only changed
    /// metrics are listed.
    pub fn render_text(&self, all: bool) -> String {
        let mut out = String::new();
        if self.deltas.is_empty() && self.failed_missing.is_empty() {
            let _ = writeln!(
                out,
                "compare: empty delta — {} metrics identical",
                self.compared
            );
        } else {
            let _ = writeln!(
                out,
                "compare: {} of {} metrics changed",
                self.deltas.len(),
                self.compared
            );
            for d in &self.deltas {
                let verdict = if d.failed { "FAIL" } else { "  ok" };
                let _ = writeln!(
                    out,
                    "{verdict} {:<52} {} -> {} ({})",
                    d.name,
                    fmt_value(d.old),
                    fmt_value(d.new),
                    fmt_rel(d.rel)
                );
            }
        }
        for name in &self.failed_missing {
            let _ = writeln!(out, "FAIL {name}: thresholded metric missing from new run");
        }
        if all {
            for name in &self.missing_in_new {
                if !self.failed_missing.contains(name) {
                    let _ = writeln!(out, "note {name}: only in baseline");
                }
            }
            for name in &self.missing_in_old {
                let _ = writeln!(out, "note {name}: only in new run");
            }
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.failed() { "FAIL" } else { "PASS" }
        );
        out
    }

    /// Machine-readable report.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("schema".into(), Json::Str(COMPARE_SCHEMA.into())),
            ("compared".into(), Json::Num(self.compared as f64)),
            ("pass".into(), Json::Bool(!self.failed())),
            (
                "deltas".into(),
                Json::Arr(
                    self.deltas
                        .iter()
                        .map(|d| {
                            Json::obj([
                                ("name".into(), Json::Str(d.name.clone())),
                                ("old".into(), Json::Num(d.old)),
                                ("new".into(), Json::Num(d.new)),
                                ("rel".into(), Json::Num(d.rel)),
                                ("failed".into(), Json::Bool(d.failed)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "missing_in_new".into(),
                Json::Arr(
                    self.missing_in_new
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
            (
                "missing_in_old".into(),
                Json::Arr(
                    self.missing_in_old
                        .iter()
                        .map(|s| Json::Str(s.clone()))
                        .collect(),
                ),
            ),
        ])
    }
}

fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn fmt_rel(rel: f64) -> String {
    if rel.is_infinite() {
        if rel > 0.0 { "new" } else { "gone" }.to_string()
    } else {
        format!("{:+.1}%", rel * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_doc(iterations: u64) -> String {
        format!(
            r#"{{
  "schema": "lp-sram-suite/bench-baseline/v3",
  "artifact": "table2",
  "version": "v0.1.0-gdeadbeef",
  "variants": {{
    "sequential_cold": {{
      "points_attempted": 85,
      "points_completed": 85,
      "elapsed_s": 0.37,
      "allocs_per_iteration": 0,
      "solver": {{"solves": 11887, "iterations_total": {iterations}}}
    }}
  }}
}}"#
        )
    }

    #[test]
    fn bench_documents_flatten_per_variant() {
        let m = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        assert_eq!(m.schema, BENCH_SCHEMA);
        assert_eq!(
            m.metrics["sequential_cold.solver.iterations_total"],
            29480.0
        );
        assert_eq!(m.metrics["sequential_cold.allocs_per_iteration"], 0.0);
        // Provenance fields are not metrics.
        assert!(!m.metrics.keys().any(|k| k.contains("version")));
    }

    #[test]
    fn v4_documents_flatten_fast_path_counters_and_sparse_ladder() {
        let text = r#"{
  "schema": "lp-sram-suite/bench-baseline/v4",
  "artifact": "table2",
  "variants": {
    "rank1_chained": {
      "jobs": 1, "rank1": true,
      "points_completed": 85,
      "solver": {"iterations_total": 9000, "cache_hits": 3, "cache_misses": 40,
                 "rank1_applied": 700, "rank1_fallbacks": 2}
    },
    "sparse_ladder": {"unknowns": 151, "iterations": 2, "lu_nnz": 450}
  }
}"#;
        let m = MetricSet::from_json_str(text).unwrap();
        assert_eq!(m.schema, BENCH_SCHEMA_V4);
        assert_eq!(m.metrics["rank1_chained.solver.cache_misses"], 40.0);
        assert_eq!(m.metrics["rank1_chained.solver.rank1_fallbacks"], 2.0);
        assert_eq!(m.metrics["sparse_ladder.lu_nnz"], 450.0);
        // Last-segment thresholds govern the new counters like any
        // other solver metric.
        let t = Threshold::parse("cache_misses=10%").unwrap();
        assert!(t.matches("rank1_chained.solver.cache_misses"));
        // Both bench schemas compare against each other: shared metric
        // names line up, new-only ones are informational.
        let v3 = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        let r = Report::build(&v3, &m, &[]);
        assert_eq!(r.exit_code(), 0);
        assert!(r.missing_in_old.contains(&"sparse_ladder.lu_nnz".into()));
    }

    #[test]
    fn v5_documents_flatten_the_full_array_reduction() {
        let text = r#"{
  "schema": "lp-sram-suite/bench-baseline/v5",
  "artifact": "table2",
  "variants": {
    "full_array": {
      "unknowns": 8723, "interface_unknowns": 531,
      "schur_blocks_shared": 4700, "schur_blocks_rebuilt": 18,
      "factorized_unknowns_schur": 5000,
      "factorized_unknowns_monolithic": 78507,
      "reduction_ratio": 15.7
    }
  }
}"#;
        let m = MetricSet::from_json_str(text).unwrap();
        assert_eq!(m.schema, BENCH_SCHEMA_V5);
        assert_eq!(m.metrics["full_array.interface_unknowns"], 531.0);
        assert_eq!(m.metrics["full_array.schur_blocks_rebuilt"], 18.0);
        assert_eq!(m.metrics["full_array.reduction_ratio"], 15.7);
        // The CI gate thresholds resolve by last segment.
        let t = Threshold::parse("schur_blocks_rebuilt=10%").unwrap();
        assert!(t.matches("full_array.schur_blocks_rebuilt"));
        let t = Threshold::parse("interface_unknowns=0%").unwrap();
        assert!(t.matches("full_array.interface_unknowns"));
        // v5 still compares against older baselines.
        let v3 = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        let r = Report::build(&v3, &m, &[]);
        assert_eq!(r.exit_code(), 0);
        assert!(r
            .missing_in_old
            .contains(&"full_array.reduction_ratio".into()));
    }

    #[test]
    fn unknown_schema_is_a_parse_error() {
        assert!(MetricSet::from_json_str(r#"{"schema": "nope/v9"}"#).is_err());
        assert!(MetricSet::from_json_str("not json").is_err());
        assert!(MetricSet::from_json_str("{}").is_err());
    }

    #[test]
    fn self_compare_is_an_empty_delta_with_exit_zero() {
        let m = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        let t = vec![Threshold::parse("iterations_total=10%").unwrap()];
        let r = Report::build(&m, &m, &t);
        assert!(r.deltas.is_empty());
        assert_eq!(r.exit_code(), 0);
        assert!(r.render_text(false).contains("empty delta"));
    }

    #[test]
    fn growth_past_threshold_fails_with_exit_one() {
        let old = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        let new = MetricSet::from_json_str(&bench_doc(29480 * 115 / 100)).unwrap();
        let t = vec![Threshold::parse("iterations_total=10%").unwrap()];
        let r = Report::build(&old, &new, &t);
        assert_eq!(r.exit_code(), 1);
        let text = r.render_text(false);
        assert!(text.contains("FAIL"), "{text}");
        assert!(
            text.contains("sequential_cold.solver.iterations_total"),
            "{text}"
        );
        // Shrinking is an improvement, never a failure.
        let r = Report::build(&new, &old, &t);
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn zero_baseline_growth_is_infinite_and_fails_a_zero_threshold() {
        let old = r#"{"schema": "lp-sram-suite/bench-baseline/v3", "variants": {"v": {"allocs_per_iteration": 0}}}"#;
        let new = r#"{"schema": "lp-sram-suite/bench-baseline/v3", "variants": {"v": {"allocs_per_iteration": 3}}}"#;
        let old = MetricSet::from_json_str(old).unwrap();
        let new = MetricSet::from_json_str(new).unwrap();
        let t = vec![Threshold::parse("allocs_per_iteration=0%").unwrap()];
        let r = Report::build(&old, &new, &t);
        assert_eq!(r.exit_code(), 1);
        assert!(r.deltas[0].rel.is_infinite());
    }

    #[test]
    fn missing_thresholded_metric_fails() {
        let old = MetricSet::from_json_str(&bench_doc(29480)).unwrap();
        let new = MetricSet {
            schema: BENCH_SCHEMA.into(),
            metrics: BTreeMap::new(),
        };
        let t = vec![Threshold::parse("iterations_total=10%").unwrap()];
        let r = Report::build(&old, &new, &t);
        assert_eq!(r.exit_code(), 1);
        assert!(!r.failed_missing.is_empty());
        // Without thresholds the same diff is informational only.
        let r = Report::build(&old, &new, &[]);
        assert_eq!(r.exit_code(), 0);
    }

    #[test]
    fn threshold_parsing_accepts_percent_and_rejects_garbage() {
        let t = Threshold::parse("iterations_total=10%").unwrap();
        assert!((t.max_growth - 0.10).abs() < 1e-12);
        assert!(t.matches("sequential_cold.solver.iterations_total"));
        assert!(t.matches("iterations_total"));
        assert!(!t.matches("iterations_total.count"));
        assert!(Threshold::parse("oops").is_err());
        assert!(Threshold::parse("x=abc").is_err());
        assert!(Threshold::parse("x=-5%").is_err());
        assert!(Threshold::parse("=5%").is_err());
    }

    #[test]
    fn manifest_documents_flatten_counters_and_histograms() {
        let text = r#"{
  "schema": "lp-sram-suite/run-manifest/v1",
  "version": "v0.1.0", "artifact": "table1",
  "created_unix": 1700000000, "elapsed_s": 2.5,
  "counters": {"anasim.solve.count": 42},
  "histograms": {"anasim.solve.iterations": {"count": 4, "sum": 100, "min": 10, "max": 40, "zeros": 0, "buckets": []}},
  "coverage": {"attempted": 10, "completed": 9, "percent": 90, "elapsed_s": 2.0, "points_per_sec": 4.5}
}"#;
        let m = MetricSet::from_json_str(text).unwrap();
        assert_eq!(m.metrics["anasim.solve.count"], 42.0);
        assert_eq!(m.metrics["anasim.solve.iterations.mean"], 25.0);
        assert_eq!(m.metrics["coverage.completed"], 9.0);
        assert_eq!(m.metrics["elapsed_s"], 2.5);
        assert!(!m.metrics.contains_key("created_unix"));
    }

    #[test]
    fn json_report_round_trips_through_the_parser() {
        let old = MetricSet::from_json_str(&bench_doc(100)).unwrap();
        let new = MetricSet::from_json_str(&bench_doc(120)).unwrap();
        let r = Report::build(
            &old,
            &new,
            &[Threshold::parse("iterations_total=10").unwrap()],
        );
        let doc = json::parse(&r.to_json().to_pretty()).expect("valid JSON");
        assert_eq!(doc.get("pass"), Some(&Json::Bool(false)));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(COMPARE_SCHEMA)
        );
    }
}
