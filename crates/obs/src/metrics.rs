//! Named counters, gauges, histograms, span timings and point records,
//! behind a thread-safe global registry.
//!
//! The hot producers (one record per Newton solve) write into a
//! thread-local buffer that is folded into the global registry every
//! [`FLUSH_THRESHOLD`] operations, when [`flush`] is called, and when
//! the thread exits — so instrumentation costs an uncontended
//! `RefCell` touch on the fast path instead of a global mutex.
//! [`snapshot`] flushes the calling thread first, which is exact for
//! the single-threaded experiment executors.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::sync::{Mutex, OnceLock};

use crate::flight::{PointTrajectory, TraceSample};
use crate::hist::Histogram;

/// Buffered operations accumulated before an automatic fold into the
/// global registry.
const FLUSH_THRESHOLD: usize = 1024;

/// Bounded lengths of the slowest-point / retry-hot-spot lists.
const MAX_POINTS: usize = 64;

/// Retained flight-recorder trajectories: every failed point up to
/// this many…
const MAX_FAILED_TRACES: usize = 32;

/// …and the slowest-k points that succeeded.
const MAX_SLOW_TRACES: usize = 8;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SpanStat {
    /// Completed spans under this path.
    pub count: u64,
    /// Total wall-clock, seconds.
    pub total_s: f64,
    /// Slowest single span, seconds.
    pub max_s: f64,
}

impl SpanStat {
    fn record(&mut self, seconds: f64) {
        self.count += 1;
        self.total_s += seconds;
        self.max_s = self.max_s.max(seconds);
    }
}

/// One campaign grid point's cost record.
#[derive(Debug, Clone, PartialEq)]
pub struct PointRecord {
    /// Stable point key, e.g. `df16/cs1 @ fs/1.0V/125C`.
    pub key: String,
    /// Wall-clock spent on the point, seconds.
    pub seconds: f64,
    /// Solver retries the point needed.
    pub retries: u64,
    /// Newton iterations the point consumed.
    pub iterations: u64,
}

/// One retained flight-recorder trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecord {
    /// Stable point key, e.g. `df16/cs1 @ fs/1.0V/125C`.
    pub key: String,
    /// `"ok"`, `"failed"`, `"budget-exhausted"` or `"panicked"`.
    pub outcome: String,
    /// Wall-clock spent on the point, seconds.
    pub seconds: f64,
    /// Total Newton iterations recorded (the trajectory keeps the
    /// last `samples.len()` of them).
    pub recorded: u64,
    /// Per-iteration samples, chronological.
    pub samples: Vec<TraceSample>,
}

/// A consistent copy of the registry contents.
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges.
    pub gauges: BTreeMap<String, f64>,
    /// Log-scale histograms.
    pub histograms: BTreeMap<String, Histogram>,
    /// Aggregated span timings keyed by hierarchical path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Slowest points, descending by seconds (bounded).
    pub slowest: Vec<PointRecord>,
    /// Points with the most retries, descending (bounded; only points
    /// that retried at all).
    pub retry_hot: Vec<PointRecord>,
    /// Retained convergence trajectories: failed points first, then
    /// the slowest successes (both bounded).
    pub traces: Vec<TraceRecord>,
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, Histogram>,
    spans: BTreeMap<String, SpanStat>,
    slowest: Vec<PointRecord>,
    retry_hot: Vec<PointRecord>,
    traces_failed: Vec<TraceRecord>,
    traces_slow: Vec<TraceRecord>,
}

/// Inserts into a bounded list kept sorted descending by `rank`.
fn bounded_insert(list: &mut Vec<PointRecord>, record: PointRecord, rank: fn(&PointRecord) -> f64) {
    let pos = list
        .binary_search_by(|r| {
            rank(&record)
                .partial_cmp(&rank(r))
                .expect("ranks are finite")
        })
        .unwrap_or_else(|p| p);
    if pos < MAX_POINTS {
        list.insert(pos, record);
        list.truncate(MAX_POINTS);
    }
}

/// A metrics registry. The process-wide one is reached through the
/// free functions ([`counter_add`], [`hist_record`], …); tests can use
/// private instances directly.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // A poisoned metrics mutex must never take the experiment down.
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Adds `delta` to the named counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        *self.lock().counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.lock().gauges.insert(name.to_string(), value);
    }

    /// Records one observation into the named histogram.
    pub fn hist_record(&self, name: &str, value: f64) {
        self.lock()
            .histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    }

    /// Records one completed span under `path`.
    pub fn record_span(&self, path: &str, seconds: f64) {
        self.lock()
            .spans
            .entry(path.to_string())
            .or_default()
            .record(seconds);
    }

    /// Records one campaign point's cost (feeds the slowest-point and
    /// retry-hot-spot lists plus the `campaign.point_seconds`
    /// histogram).
    pub fn record_point(&self, key: &str, seconds: f64, retries: u64, iterations: u64) {
        let record = PointRecord {
            key: key.to_string(),
            seconds,
            retries,
            iterations,
        };
        let mut inner = self.lock();
        inner
            .histograms
            .entry("campaign.point_seconds".to_string())
            .or_default()
            .record(seconds);
        if retries > 0 {
            bounded_insert(&mut inner.retry_hot, record.clone(), |r| r.retries as f64);
        }
        bounded_insert(&mut inner.slowest, record, |r| r.seconds);
    }

    /// Retains a point's convergence trajectory: every failed point
    /// (up to [`MAX_FAILED_TRACES`]) and the slowest
    /// [`MAX_SLOW_TRACES`] successes.
    pub fn record_trace(&self, key: &str, outcome: &str, seconds: f64, traj: PointTrajectory) {
        let record = TraceRecord {
            key: key.to_string(),
            outcome: outcome.to_string(),
            seconds,
            recorded: traj.recorded,
            samples: traj.samples,
        };
        let mut inner = self.lock();
        if outcome == "ok" {
            let pos = inner
                .traces_slow
                .binary_search_by(|r| {
                    record
                        .seconds
                        .partial_cmp(&r.seconds)
                        .expect("seconds are finite")
                })
                .unwrap_or_else(|p| p);
            if pos < MAX_SLOW_TRACES {
                inner.traces_slow.insert(pos, record);
                inner.traces_slow.truncate(MAX_SLOW_TRACES);
            }
        } else if inner.traces_failed.len() < MAX_FAILED_TRACES {
            inner.traces_failed.push(record);
        }
    }

    /// A consistent copy of everything recorded so far.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        let mut traces = inner.traces_failed.clone();
        traces.extend(inner.traces_slow.iter().cloned());
        Snapshot {
            counters: inner.counters.clone(),
            gauges: inner.gauges.clone(),
            histograms: inner.histograms.clone(),
            spans: inner.spans.clone(),
            slowest: inner.slowest.clone(),
            retry_hot: inner.retry_hot.clone(),
            traces,
        }
    }

    /// Clears every metric (used between CLI runs and by tests).
    pub fn reset(&self) {
        *self.lock() = Inner::default();
    }

    fn absorb(&self, buf: &mut LocalBuf) {
        if buf.pending == 0 {
            return;
        }
        let mut inner = self.lock();
        for (name, delta) in buf.counters.drain() {
            *inner.counters.entry(name).or_insert(0) += delta;
        }
        for (name, h) in buf.histograms.drain() {
            inner.histograms.entry(name).or_default().merge(&h);
        }
        buf.pending = 0;
    }
}

fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[derive(Default)]
struct LocalBuf {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, Histogram>,
    pending: usize,
}

impl Drop for LocalBuf {
    fn drop(&mut self) {
        global().absorb(self);
    }
}

thread_local! {
    static LOCAL: RefCell<LocalBuf> = RefCell::default();
}

/// Runs `f` on the thread-local buffer, auto-flushing past the
/// threshold. Falls back to the global registry during thread teardown.
fn with_local(f: impl FnOnce(&mut LocalBuf)) -> bool {
    LOCAL
        .try_with(|buf| {
            let mut buf = buf.borrow_mut();
            f(&mut buf);
            buf.pending += 1;
            if buf.pending >= FLUSH_THRESHOLD {
                global().absorb(&mut buf);
            }
        })
        .is_ok()
}

/// Adds `delta` to the named global counter (buffered).
pub fn counter_add(name: &str, delta: u64) {
    let done = with_local(|buf| {
        *buf.counters.entry(name.to_string()).or_insert(0) += delta;
    });
    if !done {
        global().counter_add(name, delta);
    }
}

/// Records one observation into the named global histogram (buffered).
pub fn hist_record(name: &str, value: f64) {
    let done = with_local(|buf| {
        buf.histograms
            .entry(name.to_string())
            .or_default()
            .record(value);
    });
    if !done {
        global().hist_record(name, value);
    }
}

/// Sets a global gauge (unbuffered; gauges are rare and last-write-wins).
pub fn gauge_set(name: &str, value: f64) {
    global().gauge_set(name, value);
}

/// Records one completed span under `path` (unbuffered).
pub fn record_span(path: &str, seconds: f64) {
    global().record_span(path, seconds);
}

/// Records one campaign point's cost (unbuffered).
pub fn record_point(key: &str, seconds: f64, retries: u64, iterations: u64) {
    global().record_point(key, seconds, retries, iterations);
}

/// Retains a point's convergence trajectory in the global registry
/// (unbuffered; see [`Registry::record_trace`] for the retention
/// policy).
pub fn record_trace(key: &str, outcome: &str, seconds: f64, traj: PointTrajectory) {
    global().record_trace(key, outcome, seconds, traj);
}

/// Cumulative per-thread solver work: monotonic within a thread, so a
/// campaign executor can diff it around one grid point to attribute
/// solver cost to that point without touching the global registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverTally {
    /// Newton iterations recorded on this thread so far.
    pub iterations: u64,
    /// Whole-solve retries recorded on this thread so far.
    pub retries: u64,
    /// Full LU factorizations the solver's reuse fast path actually
    /// performed (its cache misses) on this thread so far. Zero when
    /// the fast path is disabled — the plain solver factors once per
    /// iteration without reporting here.
    pub factorizations: u64,
    /// Chord (held-factorization) steps that replaced a full
    /// factorization on this thread so far.
    pub chord_steps: u64,
}

impl SolverTally {
    /// The work done since `earlier` (same-thread snapshots).
    pub fn since(&self, earlier: &SolverTally) -> SolverTally {
        SolverTally {
            iterations: self.iterations.saturating_sub(earlier.iterations),
            retries: self.retries.saturating_sub(earlier.retries),
            factorizations: self.factorizations.saturating_sub(earlier.factorizations),
            chord_steps: self.chord_steps.saturating_sub(earlier.chord_steps),
        }
    }
}

thread_local! {
    static TALLY: std::cell::Cell<SolverTally> = const {
        std::cell::Cell::new(SolverTally {
            iterations: 0,
            retries: 0,
            factorizations: 0,
            chord_steps: 0,
        })
    };
}

/// Adds solver work to the calling thread's cumulative tally (called by
/// the instrumented solver alongside its histogram records).
pub fn tally_add(iterations: u64, retries: u64) {
    let _ = TALLY.try_with(|t| {
        let mut v = t.get();
        v.iterations += iterations;
        v.retries += retries;
        t.set(v);
    });
}

/// Adds reuse-fast-path solver work to the calling thread's cumulative
/// tally. Unlike the registry counters this is thread-local and so
/// pollution-free: a single-threaded campaign can diff [`tally`] around
/// a run to prove a factorization-work reduction even while unrelated
/// threads solve concurrently.
pub fn tally_fast_path(factorizations: u64, chord_steps: u64) {
    let _ = TALLY.try_with(|t| {
        let mut v = t.get();
        v.factorizations += factorizations;
        v.chord_steps += chord_steps;
        t.set(v);
    });
}

/// The calling thread's cumulative solver tally.
pub fn tally() -> SolverTally {
    TALLY.try_with(std::cell::Cell::get).unwrap_or_default()
}

/// Folds this thread's buffered metrics into the global registry.
pub fn flush() {
    let _ = LOCAL.try_with(|buf| global().absorb(&mut buf.borrow_mut()));
}

/// Flushes the calling thread, then snapshots the global registry.
pub fn snapshot() -> Snapshot {
    flush();
    global().snapshot()
}

/// Flushes the calling thread, then clears the global registry.
///
/// Other threads' unflushed buffers survive a reset and fold in later;
/// single-threaded drivers (the CLI) see an exact reset.
pub fn reset() {
    flush();
    global().reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_records_all_kinds() {
        let r = Registry::new();
        r.counter_add("a", 2);
        r.counter_add("a", 3);
        r.gauge_set("g", 1.5);
        r.gauge_set("g", 2.5);
        r.hist_record("h", 4.0);
        r.record_span("x/y", 0.5);
        r.record_span("x/y", 1.5);
        let s = r.snapshot();
        assert_eq!(s.counters["a"], 5);
        assert_eq!(s.gauges["g"], 2.5);
        assert_eq!(s.histograms["h"].count(), 1);
        assert_eq!(s.spans["x/y"].count, 2);
        assert!((s.spans["x/y"].total_s - 2.0).abs() < 1e-12);
        assert!((s.spans["x/y"].max_s - 1.5).abs() < 1e-12);
        r.reset();
        assert!(r.snapshot().counters.is_empty());
    }

    #[test]
    fn point_lists_are_bounded_and_sorted() {
        let r = Registry::new();
        for i in 0..(MAX_POINTS + 20) {
            let retries = u64::from(i % 3 == 0);
            r.record_point(&format!("p{i}"), i as f64 * 1.0e-3, retries, 10);
        }
        let s = r.snapshot();
        assert_eq!(s.slowest.len(), MAX_POINTS);
        assert!(s.slowest.windows(2).all(|w| w[0].seconds >= w[1].seconds));
        // Only retried points make the hot-spot list.
        assert!(!s.retry_hot.is_empty());
        assert!(s.retry_hot.iter().all(|p| p.retries > 0));
        assert_eq!(
            s.histograms["campaign.point_seconds"].count(),
            (MAX_POINTS + 20) as u64
        );
    }

    #[test]
    fn trace_retention_keeps_failures_and_slowest_successes() {
        let traj = |n: u64| PointTrajectory {
            samples: vec![
                TraceSample {
                    stage: "plain",
                    attempt: 0,
                    residual: 1.0,
                    alpha: 1.0,
                };
                n as usize
            ],
            recorded: n,
        };
        let r = Registry::new();
        for i in 0..(MAX_SLOW_TRACES + 5) {
            r.record_trace(&format!("ok{i}"), "ok", i as f64, traj(3));
        }
        for i in 0..(MAX_FAILED_TRACES + 5) {
            r.record_trace(&format!("bad{i}"), "failed", 0.1, traj(2));
        }
        let s = r.snapshot();
        let failed: Vec<&TraceRecord> = s.traces.iter().filter(|t| t.outcome == "failed").collect();
        let ok: Vec<&TraceRecord> = s.traces.iter().filter(|t| t.outcome == "ok").collect();
        assert_eq!(failed.len(), MAX_FAILED_TRACES);
        assert_eq!(ok.len(), MAX_SLOW_TRACES);
        // Failures come first, successes sorted slowest-first.
        assert_eq!(s.traces[0].outcome, "failed");
        assert!(ok.windows(2).all(|w| w[0].seconds >= w[1].seconds));
        assert_eq!(ok[0].key, format!("ok{}", MAX_SLOW_TRACES + 4));
        assert_eq!(ok[0].samples.len(), 3);
        r.reset();
        assert!(r.snapshot().traces.is_empty());
    }

    #[test]
    fn buffered_globals_fold_in_on_flush() {
        // Unique names: the global registry is shared across tests.
        counter_add("test.metrics.buffered_counter", 7);
        hist_record("test.metrics.buffered_hist", 3.0);
        flush();
        let s = snapshot();
        assert_eq!(s.counters["test.metrics.buffered_counter"], 7);
        assert_eq!(s.histograms["test.metrics.buffered_hist"].count(), 1);
    }

    #[test]
    fn cross_thread_records_survive_thread_exit() {
        std::thread::spawn(|| {
            counter_add("test.metrics.cross_thread", 11);
        })
        .join()
        .unwrap();
        // The spawned thread's Drop flush folded its buffer in.
        let s = snapshot();
        assert_eq!(s.counters["test.metrics.cross_thread"], 11);
    }
}
