//! Zero-dependency observability for the lp-sram-suite workspace.
//!
//! This crate provides the instrumentation layer the experiment
//! executors and solvers record into:
//!
//! - **Spans** ([`span`]) — hierarchical wall-clock scopes keyed by a
//!   `/`-joined path, aggregated per path in the global registry.
//! - **Metrics** ([`counter_add`], [`gauge_set`], [`hist_record`],
//!   [`record_point`]) — named counters, gauges, log-scale
//!   [`Histogram`]s, and bounded slowest-point / retry-hot-spot lists.
//! - **Events** ([`install_jsonl`], [`emit`], [`progress`]) — an
//!   optional JSONL sink for `--trace`, plus a stderr progress channel
//!   for `--progress`.
//! - **Manifests** ([`RunManifest`]) — the end-of-run record for
//!   `--metrics`, parseable back for the `summary` subcommand.
//!
//! Everything is built on `std` alone (the workspace builds air-gapped)
//! and is safe to call from any thread; with no sink installed and no
//! snapshot taken, a flag-less run writes no files.

pub mod compare;
pub mod flight;
pub mod hist;
pub mod json;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod sink;
pub mod span;

pub use compare::{MetricSet, Report, Threshold};
pub use flight::{
    flight_begin, flight_disable, flight_enable, flight_enabled, flight_record, flight_set_attempt,
    flight_set_stage, flight_take, PointTrajectory, TraceSample, DEFAULT_CAPACITY,
};
pub use hist::Histogram;
pub use json::{parse as parse_json, Json, JsonError};
pub use manifest::{
    describe_version, CoverageSummary, HistogramSummary, PhaseTiming, PointTiming, RunManifest,
    TraceSampleSummary, TraceSummary, GAUGE_COVERAGE_ATTEMPTED, GAUGE_COVERAGE_COMPLETED,
    GAUGE_COVERAGE_ELAPSED_S, MANIFEST_SCHEMA,
};
pub use metrics::{
    counter_add, flush, gauge_set, hist_record, record_point, record_span, record_trace, reset,
    snapshot, tally, tally_add, tally_fast_path, PointRecord, Registry, Snapshot, SolverTally,
    SpanStat, TraceRecord,
};
pub use profile::{Profile, ProfileNode};
pub use sink::{
    close_sink, emit, install_jsonl, install_writer, progress, set_progress, sink_installed,
    thread_id,
};
pub use span::{span, Span};
