//! The JSONL event sink and the progress channel.
//!
//! Events are single-line JSON objects `{"ts": …, "kind": …, …}` where
//! `ts` is seconds since the first observability call of the process
//! (monotonic clock). No sink is installed by default — a flag-less
//! run writes no files; the CLI installs one for `--trace`.

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

static SINK: Mutex<Option<Box<dyn Write + Send>>> = Mutex::new(None);
static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
static PROGRESS: AtomicBool = AtomicBool::new(false);

/// Seconds since the process's observability epoch (first call wins).
pub fn epoch_seconds() -> f64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_secs_f64()
}

/// A small stable id for the calling thread (assigned on first use),
/// so trace consumers can separate concurrent span streams.
pub fn thread_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    thread_local! {
        static TID: std::cell::Cell<u64> = const { std::cell::Cell::new(0) };
    }
    TID.try_with(|tid| {
        if tid.get() == 0 {
            tid.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        tid.get()
    })
    .unwrap_or(0)
}

fn sink_lock() -> std::sync::MutexGuard<'static, Option<Box<dyn Write + Send>>> {
    SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Installs a JSONL sink writing to `path` (truncates an existing
/// file), replacing any previous sink.
///
/// # Errors
///
/// Propagates file-creation failures.
pub fn install_jsonl(path: impl AsRef<Path>) -> io::Result<()> {
    let file = File::create(path)?;
    install_writer(Box::new(BufWriter::new(file)));
    Ok(())
}

/// Installs an arbitrary writer as the event sink (tests use an
/// in-memory buffer).
pub fn install_writer(writer: Box<dyn Write + Send>) {
    *sink_lock() = Some(writer);
    SINK_INSTALLED.store(true, Ordering::Release);
}

/// Flushes and removes the sink. Safe to call when none is installed.
pub fn close_sink() {
    let mut guard = sink_lock();
    if let Some(mut writer) = guard.take() {
        let _ = writer.flush();
    }
    SINK_INSTALLED.store(false, Ordering::Release);
}

/// Whether a sink is currently installed (cheap; lets producers skip
/// building event payloads).
pub fn sink_installed() -> bool {
    SINK_INSTALLED.load(Ordering::Acquire)
}

/// Emits one event line. A write failure silently uninstalls the sink
/// — observability must never abort an experiment.
pub fn emit(kind: &str, fields: Vec<(String, Json)>) {
    if !sink_installed() {
        return;
    }
    let mut pairs = vec![
        ("ts".to_string(), Json::Num(epoch_seconds())),
        ("tid".to_string(), Json::Num(thread_id() as f64)),
        ("kind".to_string(), Json::Str(kind.to_string())),
    ];
    pairs.extend(fields);
    let line = Json::Obj(pairs).to_compact();
    let mut guard = sink_lock();
    if let Some(writer) = guard.as_mut() {
        if writeln!(writer, "{line}").is_err() {
            *guard = None;
            SINK_INSTALLED.store(false, Ordering::Release);
        }
    }
}

/// Enables or disables human-readable progress lines on stderr.
pub fn set_progress(enabled: bool) {
    PROGRESS.store(enabled, Ordering::Release);
}

/// Reports progress: a stderr line when `--progress` is on, and a
/// `progress` event when a sink is installed. Free when both are off.
pub fn progress(message: &str) {
    if PROGRESS.load(Ordering::Acquire) {
        eprintln!("[progress] {message}");
    }
    if sink_installed() {
        emit(
            "progress",
            vec![("message".to_string(), Json::Str(message.to_string()))],
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// A Write backed by a shared byte buffer.
    #[derive(Clone)]
    struct Shared(Arc<StdMutex<Vec<u8>>>);

    impl Write for Shared {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    /// The sink is process-global; tests touching it must not overlap.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: StdMutex<()> = StdMutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn emits_parseable_lines_and_escapes_payloads() {
        let _guard = test_lock();
        let buf = Arc::new(StdMutex::new(Vec::new()));
        install_writer(Box::new(Shared(buf.clone())));
        emit(
            "test_event",
            vec![(
                "msg".to_string(),
                Json::Str("line1\nline2 \"quoted\" \\ tab\t".to_string()),
            )],
        );
        close_sink();
        let text = String::from_utf8(buf.lock().unwrap().clone()).unwrap();
        // Find our line (the sink is global; other tests may interleave).
        let line = text
            .lines()
            .find(|l| l.contains("test_event"))
            .expect("event written");
        let doc = crate::json::parse(line).expect("line is valid JSON");
        assert_eq!(doc.get("kind").and_then(Json::as_str), Some("test_event"));
        assert_eq!(
            doc.get("msg").and_then(Json::as_str),
            Some("line1\nline2 \"quoted\" \\ tab\t")
        );
        assert!(doc.get("ts").and_then(Json::as_f64).is_some());
    }

    #[test]
    fn no_sink_means_no_work_and_no_panic() {
        let _guard = test_lock();
        close_sink();
        assert!(!sink_installed());
        emit("ignored", vec![]);
        progress("also ignored");
    }
}
