//! End-to-end exercise of the public obs API: spans, metrics and the
//! sink feeding a manifest that survives a serialize → parse round
//! trip. Runs everything in one test body because the registry and
//! sink are process-global.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// The sink is process-global; tests that install one must not overlap.
fn sink_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[test]
fn full_run_produces_a_parseable_manifest_and_trace() {
    let _guard = sink_lock();
    let trace = Arc::new(Mutex::new(Vec::new()));
    obs::install_writer(Box::new(Shared(trace.clone())));

    {
        let _run = obs::span("e2e.table2");
        for i in 0..5_u64 {
            let _point = obs::span("point");
            obs::counter_add("e2e.solve.count", 1);
            obs::hist_record("e2e.solve.iterations", 4.0 + i as f64);
            obs::record_point(&format!("e2e.p{i}"), 1.0e-3 * (i + 1) as f64, i % 2, 10 * i);
        }
        obs::emit(
            "note",
            vec![(
                "msg".to_string(),
                obs::Json::Str("weird \"payload\"\nwith newline".to_string()),
            )],
        );
    }
    obs::gauge_set(obs::GAUGE_COVERAGE_ATTEMPTED, 5.0);
    obs::gauge_set(obs::GAUGE_COVERAGE_COMPLETED, 5.0);
    obs::gauge_set(obs::GAUGE_COVERAGE_ELAPSED_S, 0.5);
    obs::close_sink();

    // Every trace line is one valid JSON object with ts + kind.
    let text = String::from_utf8(trace.lock().unwrap().clone()).unwrap();
    let mut kinds = Vec::new();
    for line in text
        .lines()
        .filter(|l| l.contains("e2e") || l.contains("note"))
    {
        let doc = obs::parse_json(line).expect("valid JSONL line");
        assert!(doc.get("ts").and_then(obs::Json::as_f64).is_some());
        kinds.push(
            doc.get("kind")
                .and_then(obs::Json::as_str)
                .expect("kind field")
                .to_string(),
        );
        if doc.get("kind").and_then(obs::Json::as_str) == Some("note") {
            assert_eq!(
                doc.get("msg").and_then(obs::Json::as_str),
                Some("weird \"payload\"\nwith newline")
            );
        }
    }
    assert!(kinds.iter().any(|k| k == "span_start"));
    assert!(kinds.iter().any(|k| k == "span_end"));
    assert!(kinds.iter().any(|k| k == "note"));

    // The snapshot feeds a manifest that round-trips through JSON.
    let snap = obs::snapshot();
    assert_eq!(snap.counters["e2e.solve.count"], 5);
    assert_eq!(snap.histograms["e2e.solve.iterations"].count(), 5);
    assert_eq!(snap.spans["e2e.table2/point"].count, 5);

    let config = BTreeMap::from([("mode".to_string(), "e2e".to_string())]);
    let manifest = obs::RunManifest::from_snapshot("table2", config, &snap, 1.25);
    let coverage = manifest.coverage.as_ref().expect("coverage from gauges");
    assert_eq!(coverage.attempted, 5);
    assert!((coverage.points_per_sec - 10.0).abs() < 1e-9);

    let parsed = obs::RunManifest::parse(&manifest.to_json_string()).expect("round-trips");
    assert_eq!(parsed, manifest);
    assert!(parsed.render_summary(3).contains("e2e.table2/point"));
}

#[test]
fn histogram_quantiles_are_exact_at_bucket_boundaries() {
    // Values exactly at power-of-two bucket edges: 2^e opens bucket e,
    // so a population of exact boundary values must never report a
    // quantile outside the observed range, and the extreme quantiles
    // must be exact.
    let mut h = obs::Histogram::new();
    for v in [1.0, 2.0, 4.0, 8.0, 16.0] {
        h.record(v);
    }
    // p0's rank lands in the minimum's own bucket e=0 ([1, 2)): the
    // estimate is the geometric midpoint √2, clamped to ≥ min.
    let p0 = h.quantile(0.0);
    assert!(
        (p0 - std::f64::consts::SQRT_2).abs() < 1e-12,
        "p0 = {p0} should be the e=0 bucket midpoint"
    );
    assert_eq!(h.quantile(1.0), 16.0, "p100 is the exact maximum");
    // Interior quantiles are geometric bucket midpoints, clamped to
    // the observed range — always within [min, max].
    for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99] {
        let v = h.quantile(q);
        assert!((1.0..=16.0).contains(&v), "p{q} = {v} escaped [min, max]");
    }
    // The median rank (2 of 0..=4) lands in bucket e=2 ([4, 8)): the
    // geometric midpoint 4√2 is the documented estimate.
    let p50 = h.quantile(0.5);
    assert!(
        (p50 - 4.0 * std::f64::consts::SQRT_2).abs() < 1e-12,
        "p50 = {p50}"
    );

    // A zeros-heavy population: ranks inside the zeros bucket are
    // exact, and the transition out of it happens at the right rank.
    let mut z = obs::Histogram::new();
    for _ in 0..9 {
        z.record(0.0);
    }
    z.record(1024.0);
    assert_eq!(z.quantile(0.0), 0.0);
    assert_eq!(z.quantile(0.5), 0.0, "rank 4 of 10 sits in the zeros");
    assert_eq!(z.quantile(0.88), 0.0, "rank 8 is still a zero");
    assert_eq!(z.quantile(1.0), 1024.0, "top rank is the exact max");

    // Single observation: every quantile is that observation.
    let mut one = obs::Histogram::new();
    one.record(3.5);
    for q in [0.0, 0.25, 0.5, 1.0] {
        assert_eq!(one.quantile(q), 3.5);
    }
}

#[test]
fn jsonl_lines_stay_atomic_under_concurrent_emitters() {
    let _guard = sink_lock();
    const THREADS: u64 = 8;
    const EVENTS_PER_THREAD: u64 = 200;
    let trace = Arc::new(Mutex::new(Vec::new()));
    obs::install_writer(Box::new(Shared(trace.clone())));
    std::thread::scope(|scope| {
        for worker in 0..THREADS {
            scope.spawn(move || {
                for seq in 0..EVENTS_PER_THREAD {
                    obs::emit(
                        "atomicity_probe",
                        vec![
                            ("worker".to_string(), obs::Json::Num(worker as f64)),
                            ("seq".to_string(), obs::Json::Num(seq as f64)),
                        ],
                    );
                }
            });
        }
    });
    obs::close_sink();

    // Every line must parse on its own — a torn or interleaved write
    // would corrupt at least one line — and each worker's events must
    // all be present exactly once, in that worker's emit order.
    let text = String::from_utf8(trace.lock().unwrap().clone()).unwrap();
    let mut next_seq = vec![0u64; THREADS as usize];
    let mut probes = 0u64;
    for line in text.lines() {
        let doc = obs::parse_json(line).expect("every sink line is valid JSON");
        if doc.get("kind").and_then(obs::Json::as_str) != Some("atomicity_probe") {
            continue; // another test's stragglers
        }
        probes += 1;
        let worker = doc
            .get("worker")
            .and_then(obs::Json::as_u64)
            .expect("worker field") as usize;
        let seq = doc.get("seq").and_then(obs::Json::as_u64).expect("seq");
        assert_eq!(
            seq, next_seq[worker],
            "worker {worker}: events must appear in emit order"
        );
        next_seq[worker] += 1;
        assert!(
            doc.get("tid")
                .and_then(obs::Json::as_u64)
                .is_some_and(|t| t > 0),
            "events carry the emitting thread's id"
        );
    }
    assert_eq!(probes, THREADS * EVENTS_PER_THREAD, "no event lost or torn");
}
