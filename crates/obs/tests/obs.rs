//! End-to-end exercise of the public obs API: spans, metrics and the
//! sink feeding a manifest that survives a serialize → parse round
//! trip. Runs everything in one test body because the registry and
//! sink are process-global.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::sync::{Arc, Mutex};

#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn full_run_produces_a_parseable_manifest_and_trace() {
    let trace = Arc::new(Mutex::new(Vec::new()));
    obs::install_writer(Box::new(Shared(trace.clone())));

    {
        let _run = obs::span("e2e.table2");
        for i in 0..5_u64 {
            let _point = obs::span("point");
            obs::counter_add("e2e.solve.count", 1);
            obs::hist_record("e2e.solve.iterations", 4.0 + i as f64);
            obs::record_point(&format!("e2e.p{i}"), 1.0e-3 * (i + 1) as f64, i % 2, 10 * i);
        }
        obs::emit(
            "note",
            vec![(
                "msg".to_string(),
                obs::Json::Str("weird \"payload\"\nwith newline".to_string()),
            )],
        );
    }
    obs::gauge_set(obs::GAUGE_COVERAGE_ATTEMPTED, 5.0);
    obs::gauge_set(obs::GAUGE_COVERAGE_COMPLETED, 5.0);
    obs::gauge_set(obs::GAUGE_COVERAGE_ELAPSED_S, 0.5);
    obs::close_sink();

    // Every trace line is one valid JSON object with ts + kind.
    let text = String::from_utf8(trace.lock().unwrap().clone()).unwrap();
    let mut kinds = Vec::new();
    for line in text
        .lines()
        .filter(|l| l.contains("e2e") || l.contains("note"))
    {
        let doc = obs::parse_json(line).expect("valid JSONL line");
        assert!(doc.get("ts").and_then(obs::Json::as_f64).is_some());
        kinds.push(
            doc.get("kind")
                .and_then(obs::Json::as_str)
                .expect("kind field")
                .to_string(),
        );
        if doc.get("kind").and_then(obs::Json::as_str) == Some("note") {
            assert_eq!(
                doc.get("msg").and_then(obs::Json::as_str),
                Some("weird \"payload\"\nwith newline")
            );
        }
    }
    assert!(kinds.iter().any(|k| k == "span_start"));
    assert!(kinds.iter().any(|k| k == "span_end"));
    assert!(kinds.iter().any(|k| k == "note"));

    // The snapshot feeds a manifest that round-trips through JSON.
    let snap = obs::snapshot();
    assert_eq!(snap.counters["e2e.solve.count"], 5);
    assert_eq!(snap.histograms["e2e.solve.iterations"].count(), 5);
    assert_eq!(snap.spans["e2e.table2/point"].count, 5);

    let config = BTreeMap::from([("mode".to_string(), "e2e".to_string())]);
    let manifest = obs::RunManifest::from_snapshot("table2", config, &snap, 1.25);
    let coverage = manifest.coverage.as_ref().expect("coverage from gauges");
    assert_eq!(coverage.attempted, 5);
    assert!((coverage.points_per_sec - 10.0).abs() < 1e-9);

    let parsed = obs::RunManifest::parse(&manifest.to_json_string()).expect("round-trips");
    assert_eq!(parsed, manifest);
    assert!(parsed.render_summary(3).contains("e2e.table2/point"));
}
