//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The suite's benches were written against the real crates.io
//! `criterion`, which an air-gapped build cannot fetch. This crate
//! provides the same surface the benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`BenchmarkId`], [`BatchSize`],
//! [`black_box`], [`criterion_group!`]/[`criterion_main!`] — backed by
//! plain wall-clock timing: each benchmark runs `sample_size`
//! iterations and prints the mean per-iteration time. It trades
//! criterion's statistics for a zero-dependency build; swap the
//! workspace `criterion` entry back to the registry version when full
//! analysis is wanted.

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard compiler-fence identity function.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup between measurements. The shim
/// times every batch of one, so the variants only exist for source
/// compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Inputs sized per iteration count.
    PerIteration,
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Combines a function name and a displayable parameter.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { label: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Drives the timed closure of one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over the configured iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with a fresh `setup` product per iteration;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of benchmarks sharing a sample-size setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many iterations each benchmark in the group runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1) as u64;
        self
    }

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "bench {}/{}: {:?}/iter over {} iters",
            self.name, label, per_iter, bencher.iters
        );
    }

    /// Runs one benchmark.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        self.run(&id.label, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; exists for source compatibility).
    pub fn finish(&mut self) {}
}

/// The harness entry point handed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Runs one ungrouped benchmark with the default sample size.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        let mut group = c.benchmark_group("shim");
        group.sample_size(7);
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 7);
    }

    #[test]
    fn iter_batched_uses_fresh_inputs() {
        let mut c = Criterion::default();
        let mut seen = Vec::new();
        let mut next = 0;
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    next += 1;
                    next
                },
                |input| seen.push(input),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(seen, vec![1, 2, 3]);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("lu_solve", 8).label, "lu_solve/8");
        assert_eq!(BenchmarkId::from_parameter("x").label, "x");
    }
}
