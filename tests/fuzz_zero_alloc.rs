//! Zero-allocation contract under fuzzed topologies: for *any*
//! ERC-clean generated netlist (not just the hand-written inverter in
//! `anasim`'s own allocation test), a sized scratch solve allocates at
//! most its returned `Solution`.
//!
//! Single test in this binary on purpose — the counting allocator is
//! process-global, and a concurrent test would pollute the counts.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use anasim::mna::AnalysisMode;
use anasim::newton::solve_with_scratch;
use anasim::{NewtonOptions, SolveScratch};
use drftest::fuzz::{random_netlist, DEFAULT_SEED};
use drill::Rng;

struct CountingAllocator;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAllocator = CountingAllocator;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[test]
fn fuzzed_netlists_keep_the_scratch_solve_allocation_free() {
    let mut rng = Rng::seeded(DEFAULT_SEED);
    let opts = NewtonOptions::default();
    let mut scratch = SolveScratch::new();
    let mut solved = 0usize;
    for _ in 0..24 {
        let nl = random_netlist(&mut rng);
        // Sizing solve: allowed to allocate (scratch growth).
        let Ok(_) = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch) else {
            continue; // structured failures are the fuzzer's concern
        };
        // Sized solve: only the returned Solution may allocate.
        let before = allocations();
        let again = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
            .expect("same netlist, same outcome");
        let allocs = allocations() - before;
        assert!(
            allocs <= 2,
            "netlist with {} unknowns allocated {allocs} times in a sized solve \
             ({} iterations)",
            nl.num_unknowns(),
            again.iterations
        );
        solved += 1;
    }
    assert!(solved >= 16, "only {solved} of 24 topologies solved");
}
