//! Property-based tests over the suite's core invariants.
//!
//! Gated behind the `proptest` cargo feature: the crates.io `proptest`
//! dependency cannot be fetched in offline/air-gapped environments, so
//! the default (tier-1) build compiles this file to nothing. Restore
//! the commented dev-dependency in the root `Cargo.toml` and pass
//! `--features proptest` to run these suites.
#![cfg(feature = "proptest")]

use lp_sram_suite::anasim::dc::DcAnalysis;
use lp_sram_suite::anasim::matrix::{solve_dense, DenseMatrix};
use lp_sram_suite::anasim::Netlist;
use lp_sram_suite::march::{engine, AddressOrder, MarchElement, MarchTest, Op, SimpleMemory};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Linear algebra: LU solves random diagonally-dominant systems exactly.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lu_roundtrips_random_systems(
        n in 1usize..12,
        seed in any::<u64>(),
    ) {
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, next());
            }
            a.add(i, i, n as f64 + 1.0);
        }
        let b: Vec<f64> = (0..n).map(|_| next()).collect();
        let x = solve_dense(a.clone(), &b).expect("diagonally dominant");
        let back = a.mul_vec(&x);
        for (lhs, rhs) in back.iter().zip(&b) {
            prop_assert!((lhs - rhs).abs() < 1e-8);
        }
    }

    #[test]
    fn divider_matches_closed_form(
        r1 in 10.0f64..1.0e6,
        r2 in 10.0f64..1.0e6,
        v in 0.1f64..10.0,
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        let mid = nl.node("mid");
        nl.vsource("V", a, Netlist::GND, v);
        nl.resistor("R1", a, mid, r1).unwrap();
        nl.resistor("R2", mid, Netlist::GND, r2).unwrap();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((sol.voltage(mid) - expected).abs() < 1e-6 * v.max(1.0));
    }

    #[test]
    fn parallel_conductances_add(
        rs in proptest::collection::vec(10.0f64..1.0e5, 1..6),
    ) {
        let mut nl = Netlist::new();
        let a = nl.node("a");
        nl.isource("I", Netlist::GND, a, 1.0e-3);
        for (k, r) in rs.iter().enumerate() {
            nl.resistor(&format!("R{k}"), a, Netlist::GND, *r).unwrap();
        }
        let g: f64 = rs.iter().map(|r| 1.0 / r).sum();
        let sol = DcAnalysis::new().operating_point(&nl).unwrap();
        let expected = 1.0e-3 / g;
        prop_assert!((sol.voltage(a) - expected).abs() < 1e-9 + 1e-6 * expected);
    }
}

// ---------------------------------------------------------------------
// March engine invariants.
// ---------------------------------------------------------------------

/// Strategy generating well-formed March tests: every sweep's reads
/// expect the value most recently written (starting from an initial
/// write sweep), so a clean memory can never miscompare.
fn consistent_march_test() -> impl Strategy<Value = MarchTest> {
    let order = prop_oneof![
        Just(AddressOrder::Up),
        Just(AddressOrder::Down),
        Just(AddressOrder::Any),
    ];
    // Each subsequent element: (order, ops) where ops is a chain
    // beginning with a read of the current background and toggling via
    // writes; encoded as a vector of booleans "write new value".
    (
        any::<bool>(),
        proptest::collection::vec(
            (order, proptest::collection::vec(any::<bool>(), 1..4)),
            0..5,
        ),
    )
        .prop_map(|(init, sweeps)| {
            let mut background = init;
            let mut elements = vec![MarchElement::sweep(
                AddressOrder::Any,
                vec![if init { Op::W1 } else { Op::W0 }],
            )];
            for (order, toggles) in sweeps {
                let mut ops = Vec::new();
                for toggle in toggles {
                    ops.push(if background { Op::R1 } else { Op::R0 });
                    if toggle {
                        background = !background;
                        ops.push(if background { Op::W1 } else { Op::W0 });
                    }
                }
                elements.push(MarchElement::Sweep { order, ops });
            }
            MarchTest::new("generated", elements)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn clean_memory_never_fails_consistent_tests(
        test in consistent_march_test(),
        words in 1usize..64,
        bits in 1usize..17,
    ) {
        let mut memory = SimpleMemory::new(words, bits);
        let outcome = engine::run(&test, &mut memory);
        prop_assert!(!outcome.detected(), "false failure: {test}");
    }

    #[test]
    fn operation_accounting_matches_complexity(
        test in consistent_march_test(),
        words in 1usize..32,
    ) {
        let mut memory = SimpleMemory::new(words, 8);
        let outcome = engine::run(&test, &mut memory);
        prop_assert_eq!(outcome.operations(), test.complexity(words));
    }

    #[test]
    fn stuck_at_detected_whenever_both_backgrounds_read(
        addr in 0usize..32,
        bit in 0usize..8,
        value in any::<bool>(),
    ) {
        use lp_sram_suite::march::{library, CellRef, Fault};
        let mut memory = SimpleMemory::new(32, 8);
        memory.inject(Fault::stuck_at(CellRef { addr, bit }, value));
        // March C- reads both backgrounds at every cell: must detect
        // every stuck-at fault.
        let outcome = engine::run(&library::march_cminus(), &mut memory);
        prop_assert!(outcome.detected());
    }

    #[test]
    fn generated_tests_always_validate(test in consistent_march_test()) {
        prop_assert!(test.validate().is_ok(), "{test}");
    }

    #[test]
    fn notation_roundtrip(test in consistent_march_test()) {
        let shown = test.to_string();
        let notation = shown.split(" = ").nth(1).unwrap();
        let reparsed = MarchTest::parse("again", notation, 1e-3).unwrap();
        prop_assert_eq!(test.elements(), reparsed.elements());
    }

    /// Full structural round-trip: rendering a test and parsing the
    /// result under the same name reproduces the value exactly
    /// (`parse(render(t)) == t`), not just element-wise.
    #[test]
    fn notation_roundtrip_is_exact(test in consistent_march_test()) {
        let shown = test.to_string();
        let notation = shown.split(" = ").nth(1).unwrap();
        let reparsed = MarchTest::parse("generated", notation, 1e-3).unwrap();
        prop_assert_eq!(&test, &reparsed);
    }

    /// Parse errors locate the offending token: the reported byte
    /// offset must slice the original notation back to exactly the
    /// reported token. Lowercase junk can never collide with the four
    /// op mnemonics (w0/w1/r0/r1 all contain a digit).
    #[test]
    fn parse_errors_locate_the_offending_token(
        junk in "[a-z]{2,4}",
        lead_ws in 0usize..3,
    ) {
        let notation = format!("{}{{⇑(w0,{junk},r0)}}", " ".repeat(lead_ws));
        let err = MarchTest::parse("bad", &notation, 1e-3).unwrap_err();
        prop_assert_eq!(&err.token, &junk);
        prop_assert_eq!(
            &notation[err.offset..err.offset + err.token.len()],
            junk.as_str()
        );
    }
}

// ---------------------------------------------------------------------
// Waveform invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pwl_is_bounded_by_its_points(
        points in proptest::collection::vec((0.0f64..1.0, -2.0f64..2.0), 2..8),
        t in -0.5f64..1.5,
    ) {
        use lp_sram_suite::anasim::devices::vsource::Waveform;
        let mut pts = points.clone();
        pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        pts.dedup_by(|a, b| a.0 == b.0);
        prop_assume!(pts.len() >= 2);
        let lo = pts.iter().map(|p| p.1).fold(f64::INFINITY, f64::min);
        let hi = pts.iter().map(|p| p.1).fold(f64::NEG_INFINITY, f64::max);
        let w = Waveform::Pwl(pts);
        let v = w.value_at(t, 0.0);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }
}

// ---------------------------------------------------------------------
// Model-structure invariants.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mismatch_mirror_is_an_involution(sigmas in proptest::array::uniform6(-8.0f64..8.0)) {
        use lp_sram_suite::process::Sigma;
        use lp_sram_suite::sram::MismatchPattern;
        let p = MismatchPattern::from_sigmas(sigmas.map(Sigma));
        prop_assert_eq!(p.mirrored().mirrored(), p);
        // Mirroring swaps the weak bit (when one exists).
        use lp_sram_suite::sram::TableRetention;
        if let Some(weak) = TableRetention::weak_bit_of(&p) {
            use lp_sram_suite::sram::StoredBit;
            let flipped = match weak {
                StoredBit::One => StoredBit::Zero,
                StoredBit::Zero => StoredBit::One,
            };
            prop_assert_eq!(TableRetention::weak_bit_of(&p.mirrored()), Some(flipped));
        }
    }

    #[test]
    fn array_location_roundtrip(addr in 0usize..4096, bit in 0usize..64) {
        use lp_sram_suite::sram::ArrayGeometry;
        let g = ArrayGeometry::paper();
        let loc = g.cell_location(addr, bit);
        prop_assert_eq!(g.address_of(loc), (addr, bit));
        prop_assert!((loc.row as usize) < g.rows);
        prop_assert!((loc.col as usize) < g.cols);
    }

    #[test]
    fn complex_field_axioms(
        ar in -10.0f64..10.0, ai in -10.0f64..10.0,
        br in -10.0f64..10.0, bi in -10.0f64..10.0,
    ) {
        use lp_sram_suite::anasim::complex::Complex;
        let a = Complex::new(ar, ai);
        let b = Complex::new(br, bi);
        // Commutativity.
        prop_assert!(((a * b) - (b * a)).abs() < 1e-12);
        prop_assert!(((a + b) - (b + a)).abs() < 1e-12);
        // |ab| = |a||b|.
        prop_assert!(((a * b).abs() - a.abs() * b.abs()).abs() < 1e-9);
        // Division inverts multiplication (away from zero).
        prop_assume!(b.abs() > 1e-6);
        prop_assert!(((a * b) / b - a).abs() < 1e-9);
    }

    #[test]
    fn saturating_sigma_conversion_is_odd_and_bounded(
        sigma in -20.0f64..20.0,
        sat in 0.05f64..0.5,
        slope in 0.01f64..0.5,
    ) {
        use lp_sram_suite::process::{Sigma, VariationModel};
        let m = VariationModel::new(slope).with_saturation(sat);
        let v = m.to_volts(Sigma(sigma));
        prop_assert!(v.abs() <= sat + 1e-12, "bounded by saturation");
        prop_assert!((v + m.to_volts(Sigma(-sigma))).abs() < 1e-12, "odd function");
        // Monotone in sigma.
        let v2 = m.to_volts(Sigma(sigma + 0.1));
        prop_assert!(v2 >= v - 1e-12);
    }

    #[test]
    fn ohm_formatting_parses_back(ohms in 1.0f64..4.0e8) {
        use lp_sram_suite::drftest::report::format_ohms;
        let s = format_ohms(ohms);
        let value: f64 = if let Some(k) = s.strip_suffix('K') {
            k.parse::<f64>().unwrap() * 1e3
        } else if let Some(m) = s.strip_suffix('M') {
            m.parse::<f64>().unwrap() * 1e6
        } else {
            s.parse().unwrap()
        };
        // Two-decimal rendering: within 1% of the original.
        prop_assert!((value - ohms).abs() <= 0.01 * ohms.max(1.0));
    }

    #[test]
    fn mos_ids_monotonicity_random_cards(
        beta in 1.0e-5f64..1.0e-2,
        vth in 0.2f64..0.8,
        vgs in 0.0f64..1.2,
        vds in 0.01f64..1.2,
    ) {
        use lp_sram_suite::anasim::devices::mosfet::MosParams;
        let p = MosParams::nmos(beta, vth);
        let (i, gm, gds) = p.ids(vgs, vds);
        prop_assert!(i >= 0.0 && gm >= 0.0 && gds >= 0.0);
        let (i_up, ..) = p.ids(vgs + 0.05, vds);
        prop_assert!(i_up >= i);
        let (i_vds, ..) = p.ids(vgs, vds + 0.05);
        prop_assert!(i_vds >= i * 0.999);
    }
}

// ---------------------------------------------------------------------
// Static analysis (ERC): every netlist the Table II generator can
// produce passes the full rule set, at any admissible tap / feed mode /
// injected defect resistance — the pre-flight gate must never reject a
// healthy campaign grid point.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn table2_generator_netlists_pass_erc(
        tap_idx in 0usize..4,
        feed_idx in 0usize..3,
        defect_num in 1u8..=32,
        log_ohms in -3.0f64..8.7, // 1 mΩ (absent) … 500 MΩ (full open)
    ) {
        use lp_sram_suite::process::PvtCondition;
        use lp_sram_suite::regulator::{
            Defect, FeedMode, RegulatorCircuit, RegulatorDesign, VrefTap,
        };
        let feed = [
            FeedMode::Static,
            FeedMode::BiasActivation,
            FeedMode::VrefActivation,
        ][feed_idx];
        let mut circuit = RegulatorCircuit::new(
            &RegulatorDesign::lp40nm(),
            PvtCondition::nominal(),
            VrefTap::ALL[tap_idx],
            feed,
        ).expect("healthy build succeeds");
        circuit.inject(Defect::new(defect_num), 10f64.powf(log_ohms));
        let report = circuit.erc_report();
        prop_assert!(
            report.is_empty(),
            "Df{defect_num} at 1e{log_ohms:.1} Ω:\n{}",
            report.render_text()
        );
    }

    #[test]
    fn retention_netlists_pass_erc(
        sigmas in proptest::array::uniform6(-6.0f64..6.0),
        vddc in 0.3f64..1.3,
    ) {
        use lp_sram_suite::erc;
        use lp_sram_suite::process::{PvtCondition, Sigma};
        use lp_sram_suite::sram::cell::build_retention_netlist;
        use lp_sram_suite::sram::{CellInstance, MismatchPattern};
        let pattern = MismatchPattern::from_sigmas(sigmas.map(Sigma));
        let inst = CellInstance::with_pattern(pattern, PvtCondition::nominal());
        let (nl, _) = build_retention_netlist(&inst, vddc).expect("valid build");
        let report = erc::check_netlist(&nl);
        prop_assert!(report.is_empty(), "{}", report.render_text());
    }
}

// ---------------------------------------------------------------------
// Rank-1/chord fast path: chained single-element perturbations must
// agree with full refactorization at every step.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random chains of load-resistor perturbations on a nonlinear
    /// inverter — exactly the single-element-update shape the
    /// defect-bisection loop produces. The rank-1 scratch carries its
    /// held factorization and chord base across the chain; every link
    /// must land within solver tolerance of a plain dense solve of the
    /// same netlist, and the fast path must never fail where the dense
    /// path converges.
    #[test]
    fn rank1_chain_agrees_with_full_refactorization(
        vin_mv in 200.0f64..900.0,
        log_loads in proptest::collection::vec(3.0f64..7.0, 1..8),
    ) {
        use lp_sram_suite::anasim::devices::mosfet::MosParams;
        use lp_sram_suite::anasim::mna::AnalysisMode;
        use lp_sram_suite::anasim::newton::solve_with_scratch;
        use lp_sram_suite::anasim::{NewtonOptions, SolveScratch};
        let mut nl = Netlist::new();
        let vdd = nl.node("vdd");
        let input = nl.node("in");
        let out = nl.node("out");
        nl.vsource("VDD", vdd, Netlist::GND, 1.1);
        nl.vsource("VIN", input, Netlist::GND, vin_mv * 1.0e-3);
        nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
            .unwrap();
        nl.mosfet("MN", out, input, Netlist::GND, MosParams::nmos(4.0e-4, 0.45))
            .unwrap();
        let load = nl.resistor("RL", out, Netlist::GND, 100.0e3).unwrap();

        let dense_opts = NewtonOptions::default();
        let rank1_opts = NewtonOptions {
            rank1: true,
            ..dense_opts
        };
        let mut dense = SolveScratch::new();
        let mut fast = SolveScratch::new();
        for (k, lg) in log_loads.iter().enumerate() {
            nl.set_param(load, 10f64.powf(*lg));
            let xd = solve_with_scratch(&nl, &dense_opts, None, AnalysisMode::Dc, &mut dense)
                .expect("dense solve converges");
            let xf = solve_with_scratch(&nl, &rank1_opts, None, AnalysisMode::Dc, &mut fast)
                .expect("rank-1 solve converges");
            for (a, b) in xd.raw().iter().zip(xf.raw().iter()) {
                prop_assert!((a - b).abs() < 1e-5, "link {}: {} vs {}", k, a, b);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Hierarchical array reduction: promoting background cells out of the
// Schur blocks is electrically inert.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random `force_active` promotion sets never change the retention
    /// verdict grid. A promoted cell is solved in the interface instead
    /// of through a shared macromodel — the Schur reduction being exact
    /// block elimination, the choice of active set must be invisible
    /// beyond solver tolerance, defect or no defect.
    #[test]
    fn forced_active_promotion_is_electrically_inert(
        promoted in proptest::collection::vec((0usize..8, 0usize..4), 0..6),
        defect in proptest::option::of((0usize..8, 0usize..4)),
    ) {
        use lp_sram_suite::anasim::{solve_array, ArraySolveOptions, SolveScratch};
        use lp_sram_suite::process::PvtCondition;
        use lp_sram_suite::sram::{ActiveCell, ArraySpec, CellInstance, StoredBit};

        let base = CellInstance::symmetric(PvtCondition::nominal());
        let mut reference = ArraySpec::retention(8, 4, 0.5, base);
        if let Some((r, c)) = defect {
            reference
                .active
                .push(ActiveCell::bridged(r, c, StoredBit::One, 1.0e3));
        }
        let mut with_promotions = reference.clone();
        with_promotions.force_active = promoted;

        let opts = ArraySolveOptions::default();
        let verdicts = |spec: &ArraySpec| {
            let built = spec.build().expect("array builds");
            let mut scratch = SolveScratch::new();
            let sol = solve_array(
                &built.netlist,
                &built.partition,
                &opts,
                Some(&built.guess()),
                &mut scratch,
            )
            .expect("array solves");
            built.retained(&sol)
        };
        prop_assert_eq!(verdicts(&reference), verdicts(&with_promotions));
    }
}

// ---------------------------------------------------------------------
// In-place LU workspace: bit-identical to the consuming factorization.
// ---------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A reused `LuWorkspace` must reproduce the consuming `into_lu`
    /// path bit-for-bit on random well-conditioned MNA-shaped systems
    /// (diagonally dominant node block plus ±1 source-coupling rows,
    /// like an assembled regulator matrix). Sharing one workspace
    /// across systems of varying order also exercises the resize path.
    #[test]
    fn lu_workspace_bit_identical_to_consuming_lu(
        orders in proptest::collection::vec(1usize..14, 1..6),
        seed in any::<u64>(),
    ) {
        use lp_sram_suite::anasim::matrix::LuWorkspace;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut ws = LuWorkspace::new();
        for &n in &orders {
            let mut a = DenseMatrix::zeros(n);
            for i in 0..n {
                for j in 0..n {
                    a.set(i, j, next());
                }
                a.add(i, i, n as f64 + 1.0);
            }
            // A voltage-source-style coupling pair (±1 off-diagonals)
            // when the system is big enough, mimicking MNA branch rows.
            if n >= 3 {
                a.set(0, n - 1, 1.0);
                a.set(n - 1, 0, 1.0);
            }
            let b: Vec<f64> = (0..n).map(|_| next()).collect();

            let lu = a.clone().into_lu().expect("diagonally dominant");
            let x_consuming = lu.solve(&b);
            ws.factor_from(&a).expect("same matrix, same verdict");
            let mut x_ws = vec![0.0; n];
            ws.solve_into(&b, &mut x_ws);

            let consuming_bits: Vec<u64> = x_consuming.iter().map(|v| v.to_bits()).collect();
            let ws_bits: Vec<u64> = x_ws.iter().map(|v| v.to_bits()).collect();
            prop_assert_eq!(consuming_bits, ws_bits, "order {} diverged", n);
        }
    }

    /// Singular systems must fail identically through both paths: same
    /// error variant, same pivot row — so the netlist layer names the
    /// same unknown no matter which path hit the zero pivot.
    #[test]
    fn lu_workspace_singular_error_parity(
        n in 2usize..10,
        zero_row in 0usize..10,
        seed in any::<u64>(),
    ) {
        use lp_sram_suite::anasim::matrix::LuWorkspace;
        use lp_sram_suite::anasim::Error;
        let zero_row = zero_row % n;
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        let mut a = DenseMatrix::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, next());
            }
            a.add(i, i, n as f64 + 1.0);
        }
        // Duplicate a row onto its neighbour (or zero it when n == 1):
        // rank deficiency that partial pivoting must detect.
        let src = (zero_row + 1) % n;
        for j in 0..n {
            let v = a.get(src, j);
            a.set(zero_row, j, v);
        }

        let consuming = a.clone().into_lu().err().expect("rank-deficient");
        let mut ws = LuWorkspace::new();
        let in_place = ws.factor_from(&a).err().expect("rank-deficient");
        match (&consuming, &in_place) {
            (
                Error::SingularMatrix { pivot_row: pc, unknown: uc },
                Error::SingularMatrix { pivot_row: pi, unknown: ui },
            ) => {
                prop_assert_eq!(pc, pi, "paths blamed different pivot rows");
                prop_assert_eq!(uc, ui);
            }
            other => prop_assert!(false, "unexpected error pair: {:?}", other),
        }
    }

    /// Netlist-level singular diagnostics: a floating node solved
    /// through the scratch path names the same unknown as a fresh
    /// cold solve (the retry/rescue machinery reports through the
    /// identical in-place factorization).
    #[test]
    fn singular_netlist_names_same_node_through_scratch(
        i_ma in 0.1f64..10.0,
    ) {
        use lp_sram_suite::anasim::mna::AnalysisMode;
        use lp_sram_suite::anasim::newton::{solve, solve_with_scratch};
        use lp_sram_suite::anasim::{Error, NewtonOptions, SolveScratch};
        let mut nl = Netlist::new();
        let c = nl.node("floating");
        nl.isource("I1", Netlist::GND, c, i_ma * 1.0e-3);
        let opts = NewtonOptions::plain();
        let fresh = solve(&nl, &opts, None, AnalysisMode::Dc).err().expect("singular");
        let mut scratch = SolveScratch::new();
        let scratched = solve_with_scratch(&nl, &opts, None, AnalysisMode::Dc, &mut scratch)
            .err()
            .expect("singular");
        match (&fresh, &scratched) {
            (
                Error::SingularMatrix { pivot_row: pa, unknown: ua },
                Error::SingularMatrix { pivot_row: pb, unknown: ub },
            ) => {
                prop_assert_eq!(pa, pb);
                prop_assert_eq!(ua, ub);
                prop_assert!(ua.is_some(), "diagnostic must name the node");
            }
            other => prop_assert!(false, "unexpected error pair: {:?}", other),
        }
    }
}
