//! End-to-end exercise of the observability toolchain added on top of
//! the span/metrics layer: a traced campaign run feeding the profiler,
//! the run-comparison engine's exit-code contract, and the convergence
//! flight recorder surfacing a budget-exhausted point's trajectory.
//!
//! Everything here shares the process-global obs registry and sink, so
//! every test takes the same lock and resets state up front.

use std::io::{self, Write};
use std::sync::{Arc, Mutex, MutexGuard};

use lp_sram_suite::anasim;
use lp_sram_suite::drftest;
use lp_sram_suite::obs;

use anasim::devices::mosfet::MosParams;
use anasim::mna::AnalysisMode;
use anasim::newton::{solve_with_retry, RetryPolicy, SolveBudget};
use anasim::{Netlist, NewtonOptions};
use drftest::campaign::PointTimer;
use drftest::experiments::table2;
use drftest::Table2Options;

fn obs_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A Write backed by a shared byte buffer, for capturing the JSONL
/// trace in memory.
#[derive(Clone)]
struct Shared(Arc<Mutex<Vec<u8>>>);

impl Write for Shared {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn profile_reproduces_campaign_wall_clock_from_the_trace() {
    let _guard = obs_lock();
    obs::reset();
    obs::flight_enable(obs::DEFAULT_CAPACITY);
    let trace = Arc::new(Mutex::new(Vec::new()));
    obs::install_writer(Box::new(Shared(trace.clone())));

    let mut opts = Table2Options::quick();
    opts.jobs = 1;
    let report = table2::run(&opts).expect("quick campaign solves");
    obs::flush();
    obs::close_sink();
    obs::flight_disable();

    let text = String::from_utf8(trace.lock().unwrap().clone()).unwrap();
    let profile = obs::Profile::from_jsonl(&text);
    assert_eq!(profile.unclosed, 0, "every span closed");

    // The `table2` root span brackets exactly the campaign the
    // coverage footer timed; folding the span stream back must land
    // within 1% of the recorded wall-clock.
    let span_total = profile
        .total_s("table2")
        .expect("the campaign root span is in the trace");
    let elapsed = report.table.coverage.elapsed_s;
    assert!(elapsed > 0.0, "coverage carries wall-clock");
    let rel = (span_total - elapsed).abs() / elapsed;
    assert!(
        rel < 0.01,
        "profile total {span_total:.4}s vs coverage {elapsed:.4}s ({:.2}% off)",
        rel * 100.0
    );

    // The collapsed-stack export carries the same tree, one line per
    // weighted node, flamegraph-ready.
    let collapsed = profile.to_collapsed();
    assert!(
        collapsed.lines().any(|l| l.starts_with("table2 ")),
        "collapsed export:\n{collapsed}"
    );
}

#[test]
fn compare_passes_on_self_and_fails_on_injected_regression() {
    let bench = |iterations_total: f64| {
        format!(
            r#"{{
  "schema": "lp-sram-suite/bench-baseline/v3",
  "artifact": "table2",
  "variants": {{
    "sequential_warm": {{
      "jobs": 1,
      "points_attempted": 240,
      "points_completed": 240,
      "elapsed_s": 10.0,
      "points_per_sec": 24.0,
      "allocs_per_iteration": 0,
      "solver": {{ "solves": 900, "iterations_total": {iterations_total} }}
    }}
  }}
}}"#
        )
    };
    let old = obs::MetricSet::from_json_str(&bench(1000.0)).expect("baseline parses");
    let thresholds = [obs::Threshold::parse("iterations_total=10%").expect("spec parses")];

    // Identical inputs: empty delta, exit 0 — the CI self-smoke.
    let same = obs::MetricSet::from_json_str(&bench(1000.0)).expect("parses");
    let self_report = obs::Report::build(&old, &same, &thresholds);
    assert!(!self_report.failed());
    assert_eq!(self_report.exit_code(), 0);
    assert!(
        self_report.deltas.iter().all(|d| d.rel == 0.0),
        "self-compare must be an empty delta: {:?}",
        self_report.deltas
    );

    // +15% iteration growth against a 10% gate: exit 1, and the
    // offending metric is named in the report.
    let regressed = obs::MetricSet::from_json_str(&bench(1150.0)).expect("parses");
    let fail_report = obs::Report::build(&old, &regressed, &thresholds);
    assert!(fail_report.failed());
    assert_eq!(fail_report.exit_code(), 1);
    assert!(fail_report
        .deltas
        .iter()
        .any(|d| d.failed && d.name.ends_with("iterations_total")));
    assert!(fail_report.render_text(false).contains("FAIL"));

    // Shrinkage is an improvement, never a failure.
    let improved = obs::MetricSet::from_json_str(&bench(850.0)).expect("parses");
    assert_eq!(
        obs::Report::build(&old, &improved, &thresholds).exit_code(),
        0
    );
}

#[test]
fn budget_exhausted_point_trajectory_lands_in_the_summary() {
    let _guard = obs_lock();
    obs::reset();
    obs::flight_enable(obs::DEFAULT_CAPACITY);

    // A threshold-biased inverter under a starved iteration budget:
    // plain Newton burns its 3 iterations, the budget trips before any
    // rescue rung, and the flight recorder holds those iterations.
    let mut nl = Netlist::new();
    let vdd = nl.node("vdd");
    let input = nl.node("in");
    let out = nl.node("out");
    nl.vsource("VDD", vdd, Netlist::GND, 1.1);
    nl.vsource("VIN", input, Netlist::GND, 0.55);
    nl.mosfet("MP", out, input, vdd, MosParams::pmos(4.0e-4, 0.45))
        .expect("library PMOS card validates");
    nl.mosfet(
        "MN",
        out,
        input,
        Netlist::GND,
        MosParams::nmos(4.0e-4, 0.45),
    )
    .expect("library NMOS card validates");
    let opts = NewtonOptions {
        max_iterations: 3,
        ..NewtonOptions::plain()
    };
    let policy = RetryPolicy::ladder().with_budget(SolveBudget::iterations(3));

    let timer = PointTimer::start("df16/cs1 @ tt, 0.30V, 25°C");
    let err = solve_with_retry(&nl, &opts, None, AnalysisMode::Dc, &policy)
        .expect_err("starved budget must trip");
    assert!(matches!(err, anasim::Error::BudgetExceeded { .. }));
    timer.finish_failed("budget-exhausted");
    obs::flight_disable();
    obs::flush();

    let snap = obs::snapshot();
    let trace = snap
        .traces
        .iter()
        .find(|t| t.key.starts_with("df16/cs1"))
        .expect("failed point retained its trajectory");
    assert_eq!(trace.outcome, "budget-exhausted");
    assert!(trace.recorded >= 3, "every Newton iteration sampled");

    // The manifest renders it, round-trips it, and the summary digest
    // names it.
    let manifest =
        obs::RunManifest::from_snapshot("table2", std::collections::BTreeMap::new(), &snap, 0.1);
    let rendered = manifest.render_traces(8);
    assert!(rendered.contains("df16/cs1"), "rendered:\n{rendered}");
    assert!(rendered.contains("budget-exhausted"));
    assert!(rendered.contains("residual"));

    let reparsed = obs::RunManifest::parse(&manifest.to_json_string()).expect("round-trips");
    assert_eq!(reparsed, manifest);
    let digest = reparsed.summary_json(5).to_compact();
    assert!(digest.contains("budget-exhausted"));
}
