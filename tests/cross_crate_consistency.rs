//! Consistency checks across abstraction layers: the behavioural
//! models must agree with the electrical ones they summarize.

use lp_sram_suite::drftest::case_study::CaseStudy;
use lp_sram_suite::drftest::SramTarget;
use lp_sram_suite::march::{engine, library, CellRef, Fault, SimpleMemory, TestTarget};
use lp_sram_suite::process::{ProcessCorner, PvtCondition};
use lp_sram_suite::sram::{
    drv_ds, ArrayGeometry, CellInstance, DrvOptions, DsConditions, ElectricalRetention,
    RetentionPolicy, SramDevice, StoredBit, TableRetention,
};

/// The table-based weak-bit classifier agrees with the electrical DRV
/// asymmetry for every case-study pattern.
#[test]
fn weak_bit_classifier_matches_electrical_drv() {
    let pvt = PvtCondition::new(ProcessCorner::Typical, 1.1, 25.0);
    for cs in CaseStudy::all() {
        if cs.number == 4 {
            continue; // 0.1σ: too small for a meaningful weak side
        }
        let inst = CellInstance::with_pattern(cs.pattern(), pvt);
        let d1 = drv_ds(&inst, StoredBit::One, &DrvOptions::coarse())
            .unwrap()
            .drv;
        let d0 = drv_ds(&inst, StoredBit::Zero, &DrvOptions::coarse())
            .unwrap()
            .drv;
        let electrical_weak = if d1 > d0 {
            StoredBit::One
        } else {
            StoredBit::Zero
        };
        assert_eq!(
            TableRetention::weak_bit_of(&cs.pattern()),
            Some(electrical_weak),
            "{cs}: d1={d1:.3} d0={d0:.3}"
        );
    }
}

/// An electrically-backed device and a behavioural memory with the
/// equivalent retention fault produce the same March m-LZ verdict.
#[test]
fn electrical_and_behavioural_devices_agree() {
    let cs = CaseStudy::new(2, StoredBit::One);
    let pvt = PvtCondition::new(ProcessCorner::FastNSlowP, 1.1, 125.0);
    let stressed = CellInstance::with_pattern(cs.pattern(), pvt);
    let drv = drv_ds(&stressed, StoredBit::One, &DrvOptions::coarse())
        .unwrap()
        .drv;
    let geometry = ArrayGeometry::small();
    let loc = geometry.cell_location(5, 2);
    let test = library::march_mlz(1e-3);

    for vreg in [drv + 0.03, drv - 0.05] {
        // Electrical route (full physics policy).
        let mut device = SramDevice::new(
            geometry,
            DsConditions { vreg },
            Box::new(ElectricalRetention::new(
                CellInstance::symmetric(pvt),
                DrvOptions::coarse(),
            )),
        );
        device.array_mut().place_pattern(loc, cs.pattern());
        let mut target = SramTarget::new(device);
        let electrical = engine::run(&test, &mut target);

        // Behavioural route (march's own fault model).
        let mut memory = SimpleMemory::new(geometry.words(), geometry.word_bits);
        if vreg < drv {
            let (addr, bit) = geometry.address_of(loc);
            memory.inject(Fault::retention_loss(CellRef { addr, bit }, true));
        }
        let behavioural = engine::run(&test, &mut memory);

        assert_eq!(
            electrical.detected(),
            behavioural.detected(),
            "verdicts diverge at vreg = {vreg}"
        );
        if electrical.detected() {
            assert_eq!(electrical.failures[0].addr, behavioural.failures[0].addr);
            assert_eq!(
                electrical.failures[0].element,
                behavioural.failures[0].element
            );
        }
    }
}

/// The electrical retention policy's cached DRV agrees with a direct
/// measurement.
#[test]
fn retention_policy_cache_agrees_with_direct_measurement() {
    let pvt = PvtCondition::nominal();
    let cs = CaseStudy::new(3, StoredBit::One);
    let mut policy = ElectricalRetention::new(CellInstance::symmetric(pvt), DrvOptions::coarse());
    let via_policy = policy.drv(&cs.pattern(), StoredBit::One).unwrap();
    let direct = drv_ds(
        &CellInstance::with_pattern(cs.pattern(), pvt),
        StoredBit::One,
        &DrvOptions::coarse(),
    )
    .unwrap()
    .drv;
    assert!((via_policy - direct).abs() < 1e-9);
}

/// The SramTarget adapter preserves word geometry and the all-ones
/// background used by the March engine.
#[test]
fn adapter_geometry_roundtrip() {
    let device = SramDevice::new(
        ArrayGeometry::paper(),
        DsConditions { vreg: 0.77 },
        Box::new(TableRetention {
            symmetric_drv: 0.135,
            special_drv: 0.64,
        }),
    );
    let target = SramTarget::new(device);
    assert_eq!(target.word_count(), 4096);
    assert_eq!(target.word_bits(), 64);
    assert_eq!(target.ones(), u64::MAX);
}

/// Retention policies behave identically through the trait object.
#[test]
fn policy_trait_object_dispatch() {
    let mut table: Box<dyn RetentionPolicy + Send> = Box::new(TableRetention {
        symmetric_drv: 0.135,
        special_drv: 0.64,
    });
    let cs = CaseStudy::new(2, StoredBit::One);
    let out = table
        .outcome(&cs.pattern(), StoredBit::One, 0.5, 1e-3)
        .unwrap();
    assert!(!out.retained());
    let out = table
        .outcome(&cs.pattern(), StoredBit::One, 0.7, 1e-3)
        .unwrap();
    assert!(out.retained());
}
