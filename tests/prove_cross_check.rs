//! Tier-1 gate for the symbolic coverage prover: the prover, the
//! concrete simulator, and the functional fuzzer must all tell the
//! same story, and the claims matrix committed under `results/` must
//! match what the current code emits.

use drftest::fuzz::{self, claim_expectations, cross_check};
use mprove::{check_paper_claims, differential, prove_library};

const DWELL: f64 = 1.0e-3;

#[test]
fn prover_matrix_is_decided_and_matches_the_paper() {
    let matrix = prove_library(DWELL);
    assert_eq!(
        matrix.counts().unknown,
        0,
        "standard fault classes must all be decided:\n{}",
        matrix.render_text()
    );
    let problems = check_paper_claims(&matrix);
    assert!(
        problems.is_empty(),
        "paper claims unproven:\n{}",
        problems.join("\n")
    );
}

#[test]
fn prover_agrees_with_the_fuzzer_claim_table() {
    let matrix = prove_library(DWELL);
    let problems = cross_check(&matrix);
    assert!(
        problems.is_empty(),
        "prover and fuzzer disagree:\n{}",
        problems.join("\n")
    );
}

#[test]
fn expectation_labels_name_real_fuzzer_properties() {
    // One case per property is enough to enumerate the labels; a
    // renamed or removed fuzzer claim must be renamed here too, or the
    // cross-check silently checks nothing.
    let summary = fuzz::fuzz_functional(1, fuzz::DEFAULT_SEED);
    let labels: Vec<&str> = summary.reports.iter().map(|r| r.label.as_str()).collect();
    for exp in claim_expectations() {
        assert!(
            labels.contains(&exp.label),
            "claim expectation `{}` does not match any fuzzer property (have: {labels:?})",
            exp.label
        );
    }
}

#[test]
fn escape_counterexamples_replay_and_witnesses_are_real_reads() {
    let matrix = prove_library(DWELL);
    let tests = march::library::all(DWELL);
    let problems = differential::check_replays(&matrix, &tests);
    assert!(
        problems.is_empty(),
        "replay disagreements:\n{}",
        problems.join("\n")
    );
}

#[test]
fn exhaustive_differential_on_a_multi_word_geometry() {
    // mprove's own tests cover 1×8 and 2×8; 4×8 adds aggressor/victim
    // distances the symbolic position argument claims are irrelevant.
    // CI's prove job extends this to 16×8 in release mode.
    let matrix = prove_library(DWELL);
    for test in march::library::all(DWELL) {
        let problems = differential::exhaustive(&test, &matrix, 4, 8);
        assert!(
            problems.is_empty(),
            "{} on 4x8 disagrees with the prover:\n{}",
            test.name(),
            problems.join("\n")
        );
    }
}

#[test]
fn committed_claims_matrix_is_current() {
    let committed = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/results/claims_matrix.json"
    ))
    .expect("results/claims_matrix.json is committed");
    let emitted = prove_library(DWELL).to_json().to_pretty();
    assert_eq!(
        committed.trim(),
        emitted.trim(),
        "results/claims_matrix.json is stale; regenerate it with \
         `cargo run --release -- prove --json > results/claims_matrix.json`"
    );
}

#[test]
fn prove_emits_verdict_counters() {
    let matrix = prove_library(DWELL);
    let counts = matrix.counts();
    obs::flush();
    let snapshot = obs::snapshot();
    let counter = |name: &str| *snapshot.counters.get(name).unwrap_or(&0);
    assert!(counter("prove.claims") >= matrix.claims.len() as u64);
    assert!(counter("prove.verdicts.detected") >= counts.detected as u64);
    assert!(counter("prove.verdicts.escaped") >= counts.escaped as u64);
    assert_eq!(counter("prove.verdicts.unknown"), 0);
}
