//! Tier-1 fuzz smoke: the std-only drill properties run in the default
//! gate (unlike the feature-gated proptest suites, which need a
//! networked build). Small case counts here — CI's fuzz-smoke job runs
//! the full budget through the CLI.

use drftest::fuzz::{self, DEFAULT_SEED};

#[test]
fn functional_claims_hold_on_the_smoke_budget() {
    let summary = fuzz::fuzz_functional(16, DEFAULT_SEED);
    assert!(summary.ok(), "{summary}");
    // 12 claims × 16 cases.
    assert_eq!(summary.total_cases(), 192);
}

#[test]
fn netlist_contracts_hold_on_the_smoke_budget() {
    let summary = fuzz::fuzz_netlists(32, DEFAULT_SEED);
    assert!(summary.ok(), "{summary}");
    assert_eq!(summary.total_cases(), 32);
}

#[test]
fn fuzz_runs_are_deterministic_per_seed() {
    let a = fuzz::fuzz_functional(4, 99);
    let b = fuzz::fuzz_functional(4, 99);
    assert_eq!(a.ok(), b.ok());
    assert_eq!(a.total_cases(), b.total_cases());

    let na = fuzz::random_netlist(&mut drill::Rng::seeded(1234));
    let nb = fuzz::random_netlist(&mut drill::Rng::seeded(1234));
    let ea: Vec<String> = na.elements().map(|(n, _)| n.to_string()).collect();
    let eb: Vec<String> = nb.elements().map(|(n, _)| n.to_string()).collect();
    assert_eq!(ea, eb);
}

#[test]
fn different_seeds_explore_different_netlists() {
    let a = fuzz::random_netlist(&mut drill::Rng::seeded(1));
    let b = fuzz::random_netlist(&mut drill::Rng::seeded(2));
    // Device counts or node counts almost surely differ; at minimum the
    // topologies must not be byte-for-byte equal renderings.
    let ra: Vec<String> = a.elements().map(|(n, k)| format!("{n}:{k:?}")).collect();
    let rb: Vec<String> = b.elements().map(|(n, k)| format!("{n}:{k:?}")).collect();
    assert_ne!(ra, rb);
}
