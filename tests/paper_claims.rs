//! The paper's headline claims, asserted against the reproduction.

use lp_sram_suite::drftest::case_study::{CaseStudy, WORST_CASE_DRV};
use lp_sram_suite::drftest::experiments::table1::{self, Table1Options};
use lp_sram_suite::drftest::{DrfDs, TestFlow};
use lp_sram_suite::march::library;
use lp_sram_suite::process::{ProcessCorner, PvtCondition};
use lp_sram_suite::regulator::{Defect, DefectCategory};
use lp_sram_suite::sram::{CellInstance, StaticPowerModel, StoredBit};

/// §V: March m-LZ has length 5N+4 and sensitizes DRF_DS for both
/// stored values.
#[test]
fn march_mlz_length_and_sensitization() {
    let t = library::march_mlz(1e-3);
    assert_eq!(t.length_formula(), (5, 4));
    assert!(DrfDs::detected_by(&t));
}

/// §V: the optimized flow runs March m-LZ 3 times instead of 12 — a
/// 75 % test-time reduction.
#[test]
fn test_time_reduction_is_75_percent() {
    let opt = TestFlow::paper_optimized(1e-3);
    let exh = TestFlow::exhaustive(1e-3);
    assert_eq!(opt.iterations().len(), 3);
    assert_eq!(exh.iterations().len(), 12);
    assert!((opt.time_reduction_vs(&exh) - 0.75).abs() < 1e-12);
}

/// Table III: every iteration keeps the expected Vreg at or above the
/// worst-case retention voltage of 730 mV.
#[test]
fn flow_vreg_stays_above_worst_case_drv() {
    for it in TestFlow::paper_optimized(1e-3).iterations() {
        assert!(it.expected_vreg() >= WORST_CASE_DRV);
        // And close: within 40 mV (the paper's values are 740-770 mV).
        assert!(it.expected_vreg() <= WORST_CASE_DRV + 0.045);
    }
}

/// Table I: the measured case-study retention voltages reproduce the
/// paper's ordering and the calibrated CS1/CS3 magnitudes.
#[test]
fn table1_shape_and_magnitudes() {
    let report = table1::run(&Table1Options::quick()).unwrap();
    assert!(report.ordering_holds());
    let drv = |n: u8| {
        report
            .rows
            .iter()
            .find(|r| r.case_study.number == n)
            .unwrap()
            .drv_ds()
    };
    // CS1 within ±5% of the paper's 730 mV; CS3 within ±10% of 570 mV.
    assert!((drv(1) - 0.730).abs() < 0.037, "CS1 {}", drv(1));
    assert!((drv(3) - 0.570).abs() < 0.057, "CS3 {}", drv(3));
    // CS2 and CS5 are the same pattern and report the same DRV.
    assert!((drv(2) - drv(5)).abs() < 1e-6);
}

/// §IV.B: the defect taxonomy — 17 DRF-capable, 6 negligible, the rest
/// increase power.
#[test]
fn defect_taxonomy_counts() {
    let drf_capable = Defect::all()
        .filter(|d| {
            matches!(
                d.expected_category(),
                DefectCategory::RetentionFault | DefectCategory::Mixed
            )
        })
        .count();
    let negligible = Defect::all()
        .filter(|d| d.expected_category() == DefectCategory::Negligible)
        .count();
    assert_eq!(drf_capable, 17);
    assert_eq!(negligible, 6);
    assert_eq!(Defect::table2_rows().len(), 17);
}

/// §IV.B category 1: with Vreg pinned at VDD, deep-sleep still saves
/// over 30 % at the worst-case (hot) PVT.
#[test]
fn worst_case_power_savings_claim() {
    let model = StaticPowerModel::lp40nm();
    for corner in ProcessCorner::ALL {
        let base = CellInstance::symmetric(PvtCondition::new(corner, 1.1, 125.0));
        let report = model.report(&base, 1.1).unwrap();
        assert!(
            report.savings > 0.30,
            "savings {:.1}% at {corner}",
            report.savings * 100.0
        );
    }
}

/// Table I structure: CSx-0 patterns are exact mirrors of CSx-1, and
/// CS5 places 64 copies of CS2's pattern.
#[test]
fn case_study_structure() {
    for n in 1..=5u8 {
        let one = CaseStudy::new(n, StoredBit::One);
        let zero = CaseStudy::new(n, StoredBit::Zero);
        assert_eq!(one.pattern().mirrored(), zero.pattern());
    }
    assert_eq!(CaseStudy::new(5, StoredBit::One).cell_count(), 64);
    assert_eq!(
        CaseStudy::new(5, StoredBit::One).pattern(),
        CaseStudy::new(2, StoredBit::One).pattern()
    );
}

/// §V: a DRF_DS is a dynamic fault needing three operations (DSM, WUP,
/// read) — tests without the deep-sleep excursion cannot see it.
#[test]
fn classic_tests_cannot_sensitize_drf_ds() {
    assert_eq!(DrfDs::SENSITIZATION_OPS, 3);
    for t in [
        library::mats_plus(),
        library::march_cminus(),
        library::march_ss(),
    ] {
        assert!(!DrfDs::detected_by(&t));
    }
}
