//! End-to-end integration: resistive-open defect → electrical
//! regulator solve → behavioural SRAM retention → March m-LZ flow
//! detection. This is the full pipeline of the paper, crossing every
//! crate of the workspace.

use lp_sram_suite::drftest::case_study::CaseStudy;
use lp_sram_suite::drftest::test_flow::{run_flow_against_defect, FlowEnvironment, TestFlow};
use lp_sram_suite::regulator::{Defect, RegulatorDesign};
use lp_sram_suite::sram::StoredBit;

fn env() -> FlowEnvironment {
    FlowEnvironment::hot_small()
}

#[test]
fn severe_output_stage_defect_is_detected() {
    let run = run_flow_against_defect(
        &TestFlow::paper_optimized(1e-3),
        Defect::new(19),
        100.0e3,
        &CaseStudy::new(1, StoredBit::One),
        &env(),
        &RegulatorDesign::lp40nm(),
    )
    .unwrap();
    assert!(run.detected());
}

#[test]
fn tiny_defect_escapes_and_larger_is_caught() {
    // Around the minimum resistance there is a pass/fail boundary: a
    // far smaller defect must pass, a far bigger one must fail.
    let cs = CaseStudy::new(1, StoredBit::One);
    let design = RegulatorDesign::lp40nm();
    let flow = TestFlow::paper_optimized(1e-3);
    let small =
        run_flow_against_defect(&flow, Defect::new(16), 20.0, &cs, &env(), &design).unwrap();
    assert!(!small.detected(), "a 20 Ω imperfection must pass");
    let large =
        run_flow_against_defect(&flow, Defect::new(16), 1.0e6, &cs, &env(), &design).unwrap();
    assert!(large.detected(), "a 1 MΩ open must fail");
}

#[test]
fn divider_defect_detected_through_reference_shift() {
    // Df1 starves every tap; the flow sees the depressed Vreg.
    let run = run_flow_against_defect(
        &TestFlow::paper_optimized(1e-3),
        Defect::new(1),
        2.0e6,
        &CaseStudy::new(2, StoredBit::One),
        &env(),
        &RegulatorDesign::lp40nm(),
    )
    .unwrap();
    assert!(run.detected());
}

#[test]
fn mirror_case_study_is_caught_by_the_second_retention_pass() {
    // A CS2-0 cell loses '0's: only the second DSM (array holding 0)
    // sensitizes it, so detection happens in ME7 (element index 6).
    // The defect resistance is chosen so the rail lands between the
    // symmetric cells' retention voltage and the stressed cell's (a
    // huge open would scramble the whole array and fire in ME4
    // instead).
    let run = run_flow_against_defect(
        &TestFlow::paper_optimized(1e-3),
        Defect::new(16),
        30.0e3,
        &CaseStudy::new(2, StoredBit::Zero),
        &env(),
        &RegulatorDesign::lp40nm(),
    )
    .unwrap();
    assert!(run.detected());
    let first = run
        .iterations
        .iter()
        .find(|r| r.outcome.detected())
        .unwrap();
    assert_eq!(
        first.outcome.failures[0].element, 6,
        "a lost '0' must surface in ME7's r0"
    );
}

#[test]
fn transient_defect_df8_detected_at_large_resistance() {
    // Df8 delays regulator activation; at hundreds of MΩ the rail
    // collapses before hand-off and the data is gone.
    let run = run_flow_against_defect(
        &TestFlow::paper_optimized(1e-3),
        Defect::new(8),
        400.0e6,
        &CaseStudy::new(1, StoredBit::One),
        &env(),
        &RegulatorDesign::lp40nm(),
    )
    .unwrap();
    assert!(run.detected(), "Df8 at 400 MΩ must be caught");
}

#[test]
fn negligible_defects_never_fail_the_flow() {
    let cs = CaseStudy::new(1, StoredBit::One);
    let design = RegulatorDesign::lp40nm();
    let flow = TestFlow::paper_optimized(1e-3);
    for n in [14u8, 17, 18, 21, 24, 25] {
        let run =
            run_flow_against_defect(&flow, Defect::new(n), 450.0e6, &cs, &env(), &design).unwrap();
        assert!(!run.detected(), "negligible Df{n} flagged");
    }
}

#[test]
fn power_category_defects_pass_the_retention_flow() {
    // Category-1 defects raise Vreg: retention is safe (they cost
    // power instead), so the DRF flow must not flag them.
    let cs = CaseStudy::new(1, StoredBit::One);
    let design = RegulatorDesign::lp40nm();
    let flow = TestFlow::paper_optimized(1e-3);
    for n in [13u8, 15, 20, 28, 30] {
        let run =
            run_flow_against_defect(&flow, Defect::new(n), 450.0e6, &cs, &env(), &design).unwrap();
        assert!(!run.detected(), "category-1 Df{n} flagged as DRF");
    }
}

#[test]
fn exhaustive_flow_detects_whatever_optimized_detects() {
    let cs = CaseStudy::new(1, StoredBit::One);
    let design = RegulatorDesign::lp40nm();
    for (defect, ohms) in [(Defect::new(16), 50.0e3), (Defect::new(23), 1.0e6)] {
        let opt = run_flow_against_defect(
            &TestFlow::paper_optimized(1e-3),
            defect,
            ohms,
            &cs,
            &env(),
            &design,
        )
        .unwrap();
        let exh = run_flow_against_defect(
            &TestFlow::exhaustive(1e-3),
            defect,
            ohms,
            &cs,
            &env(),
            &design,
        )
        .unwrap();
        assert_eq!(
            opt.detected(),
            exh.detected(),
            "{defect}: optimized and exhaustive flows disagree"
        );
    }
}
