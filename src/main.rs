//! `lp-sram-suite` command-line driver: regenerates any of the paper's
//! artifacts by name.
//!
//! ```text
//! lp-sram-suite <artifact> [--paper|--reduced] [--jobs <n>] [--checkpoint <file>]
//!               [--trace <file.jsonl>] [--metrics <file.json>] [--progress]
//! lp-sram-suite summary <manifest.json> [--top <k>] [--json] [--traces]
//! lp-sram-suite profile <trace.jsonl> [--top <k>] [--collapsed <out.txt>] [--json]
//! lp-sram-suite compare <old.json> <new.json> [--fail-over <name>=<pct>%]…
//!               [--json] [--all]
//! lp-sram-suite lint [--deny-warnings] [--json] [--rules]
//! lp-sram-suite prove [--json] [--deny-unknown] [--differential] [--metrics <file.json>]
//! lp-sram-suite fuzz-functional [--cases <n>] [--fuzz-seed <u64>]
//! lp-sram-suite fuzz-netlist   [--cases <n>] [--fuzz-seed <u64>]
//!   artifacts: fig4, fig5, table1, table2, table3, array, march,
//!              power, power-defects, ds-time, monte-carlo, all
//! ```
//!
//! The `fuzz-*` subcommands drive the adversarial harnesses in
//! [`drftest::fuzz`]. Runs are deterministic per seed; a failing
//! property prints the per-case seed and the exact replay command
//! (`--fuzz-seed <case_seed> --cases 1`). The seed and case count are
//! echoed into the `--metrics` manifest so CI failures replay from the
//! artifact alone.
//!
//! `prove` runs the symbolic coverage prover ([`mprove`]): one
//! Proven-Detected / Proven-Escaped / Unknown verdict per (march test,
//! fault class), cross-checked against the paper's claim table, the
//! concrete simulator (escape-counterexample replay), and the
//! functional fuzzer's claim list. `--differential` additionally
//! grades every enumerable fault on 1×8, 2×8, and 16×8 memories and
//! requires exact agreement. Exit code 0 = everything proven, 1 = any
//! claimed-but-unproven result or oracle disagreement (or, under
//! `--deny-unknown`, any Unknown verdict), 2 = usage errors. `--json`
//! prints the claims matrix as JSON on stdout (failures go to
//! stderr), which CI diffs against `results/claims_matrix.json`.
//!
//! `lint` runs the static electrical rule checks (`ERC001`… plus the
//! regulator-family `ERC1xx` rules) over every netlist the campaigns
//! solve, without solving anything. Exit code 0 = clean, 1 = errors,
//! 2 = warnings under `--deny-warnings`; `--rules` prints the rule
//! catalogue instead.
//!
//! `--jobs <n>` fans the campaign grids across `n` worker threads
//! (`0` or omitted = all available cores, `1` = sequential). Every
//! artifact's output is byte-identical for any value — see the
//! executor's determinism contract.
//!
//! `--checkpoint` (table2 only) appends each completed table cell to
//! the given tab-separated file; rerunning with the same path resumes,
//! skipping cells already logged.
//!
//! The observability flags are all opt-in — a flag-less run writes no
//! extra files and produces no extra output:
//!
//! * `--trace <file.jsonl>` streams span/point/progress events as one
//!   JSON object per line;
//! * `--metrics <file.json>` writes a [`obs::RunManifest`] at the end
//!   of the run (version, config echo, per-phase timings, solver
//!   histograms, coverage);
//! * `--progress` prints human-readable progress lines on stderr;
//! * `summary <manifest.json>` renders a previously written manifest:
//!   top-k slowest points, retry hot spots, and histogram sketches;
//!   `--traces` appends the convergence flight-recorder digest and
//!   `--json` emits the whole digest machine-readably.
//!
//! `--trace`/`--metrics` also arm the convergence flight recorder:
//! each grid point's per-iteration residual/damping trajectory is
//! ring-buffered and the slowest and all failed points are retained in
//! the manifest.
//!
//! `profile <trace.jsonl>` folds a `--trace` stream into a
//! calling-context tree (self/total wall-clock, call counts, solver
//! iteration attribution) with a self-time hotlist; `--collapsed`
//! additionally writes a collapsed-stack file for flamegraph tooling.
//!
//! `compare <old.json> <new.json>` diffs two run manifests or two
//! bench-baseline files metric-by-metric. `--fail-over
//! iterations_total=10%` turns growth beyond a threshold into exit
//! code 1, making CI regression gates one command; exit 2 is reserved
//! for usage/parse errors.

use std::collections::BTreeMap;
use std::process::ExitCode;
use std::time::Instant;

use drftest::case_study::CaseStudy;
use drftest::drv_analysis::Fig4Options;
use drftest::experiments::table1::Table1Options;
use drftest::experiments::{array, fig4, table1, table2, table3};
use drftest::{
    ds_time_sweep, monte_carlo_drv, power_defect_table, taxonomy, CoverageOptions, DsTimeOptions,
    MonteCarloOptions, PowerDefectOptions, Table2Options, TaxonomyOptions,
};
use march::library;
use regulator::Defect;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lp-sram-suite <artifact> [--paper|--reduced] [--jobs <n>] [--checkpoint <file>]\n\
         \x20                            [--trace <file.jsonl>] [--metrics <file.json>] [--progress]\n\
         \x20      lp-sram-suite summary <manifest.json> [--top <k>] [--json] [--traces]\n\
         \x20      lp-sram-suite profile <trace.jsonl> [--top <k>] [--collapsed <out.txt>] [--json]\n\
         \x20      lp-sram-suite compare <old.json> <new.json> [--fail-over <name>=<pct>%]... [--json] [--all]\n\
         artifacts:\n\
           fig4          DRV vs single-transistor Vth variation\n\
           fig5          defect classification (colour coding)\n\
           table1        case-study retention voltages\n\
           table2        minimum defect resistances\n\
           table3        optimized test flow + coverage matrix\n\
           array         full-array retention map (block-Schur reduction)\n\
           march         March algorithm comparison\n\
           power-defects category-1 (power) defect characterization\n\
           ds-time       deep-sleep dwell-time sweep\n\
           monte-carlo   random-mismatch DRV distribution\n\
           all           everything above with fast settings\n\
         --jobs <n>: worker threads (0/omitted = all cores, 1 = sequential);\n\
         \x20    output is byte-identical for any value\n\
         --checkpoint <file> (table2): log completed cells and resume\n\
         --trace <file.jsonl>:  stream span/point/progress events\n\
         --metrics <file.json>: write the run manifest at exit\n\
         --progress:            human-readable progress on stderr\n\
         summary <manifest.json>: render a manifest written by --metrics\n\
         \x20    (--traces: convergence flight-recorder digest; --json: machine-readable)\n\
         profile <trace.jsonl>: fold a --trace stream into a call tree + hotlist\n\
         \x20    (--collapsed <out.txt>: flamegraph collapsed-stack export)\n\
         compare <old.json> <new.json>: diff two manifests or bench baselines;\n\
         \x20    --fail-over <metric>=<pct>% exits 1 when growth exceeds the\n\
         \x20    threshold (repeatable; exit 2 = usage/parse error)\n\
         lint [--deny-warnings] [--json] [--rules]:\n\
         \x20    static ERC over the suite's netlists (exit 1 on errors,\n\
         \x20    2 on warnings with --deny-warnings); --rules lists the\n\
         \x20    rule catalogue\n\
         prove [--json] [--deny-unknown] [--differential] [--metrics <file.json>]:\n\
         \x20    symbolic coverage prover over the march library, with the\n\
         \x20    verdicts cross-checked against the paper's claim table, the\n\
         \x20    simulator, and the fuzzer's claims (exit 1 on any unproven\n\
         \x20    claim or disagreement; --deny-unknown also fails Unknowns;\n\
         \x20    --differential grades every enumerable fault exhaustively)\n\
         fuzz-functional [--cases <n>] [--fuzz-seed <u64>]:\n\
         \x20    randomized march-claim tester (n cases per property)\n\
         fuzz-netlist [--cases <n>] [--fuzz-seed <u64>]:\n\
         \x20    ERC-clean netlist fuzzer against the analog solver;\n\
         \x20    failures print a one-command replay seed"
    );
    ExitCode::FAILURE
}

/// Default `--cases` per fuzz subcommand: ≥ 1000 functional sequences
/// (12 properties × 96) and 400 netlists, the fuzz-smoke floor now
/// that the fuzzers gate CI by default.
fn default_fuzz_cases(artifact: &str) -> u64 {
    if artifact == "fuzz-netlist" {
        400
    } else {
        96
    }
}

fn run(
    artifact: &str,
    paper: bool,
    reduced: bool,
    jobs: usize,
    checkpoint: Option<&str>,
    fuzz: (u64, Option<u64>),
) -> Result<(), Box<dyn std::error::Error>> {
    let (fuzz_seed, fuzz_cases) = fuzz;
    match artifact {
        "fig4" => {
            let mut opts = if paper {
                Fig4Options::paper()
            } else {
                Fig4Options::quick()
            };
            opts.jobs = jobs;
            println!("{}", fig4::run(&opts)?);
        }
        "fig5" => {
            println!("{}", taxonomy(&TaxonomyOptions::default())?);
        }
        "table1" => {
            let mut opts = if paper {
                Table1Options::paper()
            } else {
                Table1Options::quick()
            };
            opts.jobs = jobs;
            println!("{}", table1::run(&opts)?);
        }
        "array" => {
            let mut opts = if paper {
                drftest::ArrayRetentionOptions::paper()
            } else {
                drftest::ArrayRetentionOptions::quick()
            };
            opts.jobs = jobs;
            println!("{}", array::run(&opts)?);
        }
        "table2" => {
            let mut opts = if paper {
                Table2Options::paper()
            } else if reduced {
                Table2Options::reduced()
            } else {
                Table2Options::quick()
            };
            opts.jobs = jobs;
            opts.checkpoint = checkpoint.map(std::path::PathBuf::from);
            println!("{}", table2::run(&opts)?);
        }
        "table3" => {
            let mut opts = CoverageOptions::paper();
            opts.jobs = jobs;
            if !paper {
                opts.defects = Defect::table2_rows()
                    .into_iter()
                    .filter(|d| !d.is_transient_mechanism())
                    .collect();
            }
            println!("{}", table3::run(&opts)?);
        }
        "march" => {
            for test in library::all(1.0e-3) {
                let (a, b) = test.length_formula();
                println!("{test}  (length {a}N+{b})");
            }
        }
        "fuzz-functional" | "fuzz-netlist" => {
            let cases = fuzz_cases.unwrap_or_else(|| default_fuzz_cases(artifact));
            let summary = if artifact == "fuzz-netlist" {
                drftest::fuzz_netlists(cases, fuzz_seed)
            } else {
                drftest::fuzz_functional(cases, fuzz_seed)
            };
            println!("{summary}");
            if let Some(failure) = summary.first_failure() {
                return Err(format!(
                    "fuzzing found a counterexample; replay it with \
                     `lp-sram-suite {artifact} --fuzz-seed {} --cases 1`\n{failure}",
                    failure.case_seed
                )
                .into());
            }
        }
        "power-defects" => {
            println!("{}", power_defect_table(&PowerDefectOptions::default())?);
        }
        "ds-time" => {
            println!("{}", ds_time_sweep(&DsTimeOptions::marginal_df16())?);
        }
        "monte-carlo" => {
            let opts = MonteCarloOptions {
                jobs,
                ..MonteCarloOptions::default()
            };
            println!("{}", monte_carlo_drv(&opts)?);
            for n in [1u8, 2, 4] {
                let cs = CaseStudy::new(n, sram::StoredBit::One);
                println!("{cs}: paper DRV {:.0} mV", cs.paper_drv_mv());
            }
        }
        "all" => {
            for artifact in [
                "table1",
                "fig4",
                "table2",
                "table3",
                "array",
                "fig5",
                "march",
                "power-defects",
                "ds-time",
                "monte-carlo",
            ] {
                println!("==== {artifact} ====");
                run(artifact, false, false, jobs, None, fuzz)?;
                println!();
            }
        }
        _ => return Err(format!("unknown artifact `{artifact}`").into()),
    }
    Ok(())
}

/// Runs the static ERC lint sweep; returns the process exit code.
fn lint(deny_warnings: bool, json: bool, rules: bool) -> ExitCode {
    if rules {
        for (code, name, summary) in drftest::rule_catalogue() {
            println!("{code}  {name:<28} {summary}");
        }
        return ExitCode::SUCCESS;
    }
    match drftest::lint_all(process::PvtCondition::nominal()) {
        Ok(run) => {
            if json {
                println!("{}", run.render_json());
            } else {
                print!("{}", run.render_text());
            }
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            ExitCode::from(run.exit_code(deny_warnings) as u8)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Renders a `--metrics` manifest back as a human-readable digest
/// (or, with `json`, as a machine-readable summary document).
fn summarize(
    path: &str,
    top_k: usize,
    json: bool,
    traces: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read manifest `{path}`: {e}"))?;
    let manifest = obs::RunManifest::parse(&text)
        .map_err(|e| format!("`{path}` is not a run manifest: {e}"))?;
    if json {
        println!("{}", manifest.summary_json(top_k).to_pretty());
        return Ok(());
    }
    print!("{}", manifest.render_summary(top_k));
    if traces {
        print!("{}", manifest.render_traces(8));
    }
    Ok(())
}

/// Folds a `--trace` JSONL stream into a calling-context profile.
fn profile(
    path: &str,
    top_k: usize,
    collapsed: Option<&str>,
    json: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read trace `{path}`: {e}"))?;
    let prof = obs::Profile::from_jsonl(&text);
    if let Some(out) = collapsed {
        std::fs::write(out, prof.to_collapsed())
            .map_err(|e| format!("cannot write collapsed stacks `{out}`: {e}"))?;
    }
    if json {
        println!("{}", prof.to_json().to_pretty());
    } else {
        print!("{}", prof.render(top_k));
    }
    Ok(())
}

/// Diffs two metric files (`--metrics` manifests or bench baselines).
/// Exit codes: 0 = within thresholds, 1 = regression, 2 = usage or
/// parse error — the contract CI gates build on.
fn compare(args: &[String]) -> ExitCode {
    const USAGE_ERROR: u8 = 2;
    let json = args.iter().any(|a| a == "--json");
    let all = args.iter().any(|a| a == "--all");
    let mut paths: Vec<&str> = Vec::new();
    let mut thresholds: Vec<obs::Threshold> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--fail-over" => {
                let Some(spec) = args.get(i + 1) else {
                    eprintln!("error: --fail-over needs <metric>=<pct>%");
                    return ExitCode::from(USAGE_ERROR);
                };
                match obs::Threshold::parse(spec) {
                    Ok(t) => thresholds.push(t),
                    Err(e) => {
                        eprintln!("error: bad --fail-over `{spec}`: {e}");
                        return ExitCode::from(USAGE_ERROR);
                    }
                }
                i += 2;
            }
            "--json" | "--all" => i += 1,
            flag if flag.starts_with("--") => {
                eprintln!("error: unknown compare flag `{flag}`");
                return ExitCode::from(USAGE_ERROR);
            }
            path => {
                paths.push(path);
                i += 1;
            }
        }
    }
    if paths.len() != 2 {
        eprintln!(
            "error: compare needs exactly two files (old, new), got {}",
            paths.len()
        );
        return ExitCode::from(USAGE_ERROR);
    }
    let load = |p: &str| -> Result<obs::MetricSet, String> {
        let text = std::fs::read_to_string(p).map_err(|e| format!("cannot read `{p}`: {e}"))?;
        obs::MetricSet::from_json_str(&text).map_err(|e| format!("`{p}`: {e}"))
    };
    let (old, new) = match (load(paths[0]), load(paths[1])) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("error: {e}");
            return ExitCode::from(USAGE_ERROR);
        }
    };
    let report = obs::Report::build(&old, &new, &thresholds);
    if json {
        println!("{}", report.to_json().to_pretty());
    } else {
        print!("{}", report.render_text(all));
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    ExitCode::from(report.exit_code() as u8)
}

/// Runs the symbolic coverage prover over the march library and
/// cross-checks the resulting claims matrix against the paper's claim
/// table, the concrete simulator (counterexample replay + witness
/// validation), and the functional fuzzer's claim list. Exit codes:
/// 0 = everything proven and all oracles agree, 1 = any
/// claimed-but-unproven result, disagreement, or (with
/// `--deny-unknown`) Unknown verdict, 2 = usage error.
fn prove(args: &[String]) -> ExitCode {
    const USAGE_ERROR: u8 = 2;
    let json = args.iter().any(|a| a == "--json");
    let deny_unknown = args.iter().any(|a| a == "--deny-unknown");
    let differential = args.iter().any(|a| a == "--differential");
    let metrics = flag_value(args, "--metrics");
    for flag in args {
        if flag.starts_with("--")
            && !matches!(
                flag.as_str(),
                "--json" | "--deny-unknown" | "--differential" | "--metrics"
            )
        {
            eprintln!("error: unknown prove flag `{flag}`");
            return ExitCode::from(USAGE_ERROR);
        }
    }
    let started = Instant::now();
    let dwell = 1.0e-3;
    let matrix = mprove::prove_library(dwell);
    let tests = library::all(dwell);
    let mut problems = mprove::check_paper_claims(&matrix);
    problems.extend(mprove::differential::check_replays(&matrix, &tests));
    problems.extend(drftest::fuzz::cross_check(&matrix));
    if differential {
        for (words, bits) in [(1, 8), (2, 8), (16, 8)] {
            for test in &tests {
                problems.extend(mprove::differential::exhaustive(test, &matrix, words, bits));
            }
        }
    }
    if json {
        println!("{}", matrix.to_json().to_pretty());
    } else {
        print!("{matrix}");
    }
    for problem in &problems {
        eprintln!("FAIL: {problem}");
    }
    let counts = matrix.counts();
    let denied = deny_unknown && counts.unknown > 0;
    if denied {
        eprintln!(
            "FAIL: {} Unknown verdict(s) with --deny-unknown",
            counts.unknown
        );
    }
    if let Some(path) = metrics {
        obs::flush();
        let mut config = BTreeMap::new();
        config.insert("artifact".to_string(), "prove".to_string());
        config.insert("prove.differential".to_string(), differential.to_string());
        config.insert("prove.deny_unknown".to_string(), deny_unknown.to_string());
        let manifest = obs::RunManifest::from_snapshot(
            "prove",
            config,
            &obs::snapshot(),
            started.elapsed().as_secs_f64(),
        );
        if let Err(e) = std::fs::write(path, manifest.to_json_string()) {
            eprintln!("error: cannot write metrics file `{path}`: {e}");
        }
    }
    obs::close_sink();
    if problems.is_empty() && !denied {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The option value following `flag`, if present.
fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

/// Echo of the effective configuration into the manifest.
fn config_echo(
    artifact: &str,
    paper: bool,
    reduced: bool,
    jobs: usize,
    checkpoint: Option<&str>,
    fuzz: (u64, Option<u64>),
) -> BTreeMap<String, String> {
    let mut config = BTreeMap::new();
    config.insert("artifact".to_string(), artifact.to_string());
    if artifact.starts_with("fuzz-") {
        let (seed, cases) = fuzz;
        config.insert("fuzz.seed".to_string(), seed.to_string());
        config.insert(
            "fuzz.cases".to_string(),
            cases
                .unwrap_or_else(|| default_fuzz_cases(artifact))
                .to_string(),
        );
    }
    let mode = if paper {
        "paper"
    } else if reduced {
        "reduced"
    } else {
        "quick"
    };
    config.insert("mode".to_string(), mode.to_string());
    config.insert(
        "jobs".to_string(),
        drftest::effective_jobs(jobs).to_string(),
    );
    if let Some(path) = checkpoint {
        config.insert("checkpoint".to_string(), path.to_string());
    }
    config
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(artifact) = args.first().map(String::as_str) else {
        return usage();
    };
    if artifact == "lint" {
        return lint(
            args.iter().any(|a| a == "--deny-warnings"),
            args.iter().any(|a| a == "--json"),
            args.iter().any(|a| a == "--rules"),
        );
    }
    if artifact == "summary" {
        let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
            eprintln!("error: summary needs a manifest path");
            return usage();
        };
        let top_k = flag_value(&args, "--top")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let json = args.iter().any(|a| a == "--json");
        let traces = args.iter().any(|a| a == "--traces");
        return match summarize(path, top_k, json, traces) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if artifact == "profile" {
        let Some(path) = args.get(1).filter(|a| !a.starts_with("--")) else {
            eprintln!("error: profile needs a trace (JSONL) path");
            return usage();
        };
        let top_k = flag_value(&args, "--top")
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        let collapsed = flag_value(&args, "--collapsed");
        let json = args.iter().any(|a| a == "--json");
        return match profile(path, top_k, collapsed, json) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if artifact == "compare" {
        return compare(&args[1..]);
    }
    if artifact == "prove" {
        return prove(&args[1..]);
    }
    let paper = args.iter().any(|a| a == "--paper");
    let reduced = args.iter().any(|a| a == "--reduced");
    let jobs = match flag_value(&args, "--jobs") {
        Some(v) => match v.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                eprintln!("error: --jobs expects a non-negative integer, got `{v}`");
                return usage();
            }
        },
        None => 0,
    };
    let checkpoint = flag_value(&args, "--checkpoint");
    let fuzz_seed = match flag_value(&args, "--fuzz-seed") {
        Some(v) => match v.parse::<u64>() {
            Ok(s) => s,
            Err(_) => {
                eprintln!("error: --fuzz-seed expects a u64, got `{v}`");
                return usage();
            }
        },
        None => drftest::fuzz::DEFAULT_SEED,
    };
    let fuzz_cases = match flag_value(&args, "--cases") {
        Some(v) => match v.parse::<u64>() {
            Ok(n) if n > 0 => Some(n),
            _ => {
                eprintln!("error: --cases expects a positive integer, got `{v}`");
                return usage();
            }
        },
        None => None,
    };
    let fuzz = (fuzz_seed, fuzz_cases);
    let trace = flag_value(&args, "--trace");
    let metrics = flag_value(&args, "--metrics");
    if args.iter().any(|a| a == "--progress") {
        obs::set_progress(true);
    }
    if let Some(path) = trace {
        if let Err(e) = obs::install_jsonl(path) {
            eprintln!("error: cannot open trace file `{path}`: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Observability runs arm the convergence flight recorder: per-point
    // residual trajectories for the slowest and all failed points land
    // in the manifest (`summary --traces` renders them).
    if trace.is_some() || metrics.is_some() {
        obs::flight_enable(obs::DEFAULT_CAPACITY);
    }
    let started = Instant::now();
    let outcome = run(artifact, paper, reduced, jobs, checkpoint, fuzz);
    if let Some(path) = metrics {
        obs::flush();
        let manifest = obs::RunManifest::from_snapshot(
            artifact,
            config_echo(artifact, paper, reduced, jobs, checkpoint, fuzz),
            &obs::snapshot(),
            started.elapsed().as_secs_f64(),
        );
        if let Err(e) = std::fs::write(path, manifest.to_json_string()) {
            eprintln!("error: cannot write metrics file `{path}`: {e}");
        }
    }
    obs::close_sink();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
