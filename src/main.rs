//! `lp-sram-suite` command-line driver: regenerates any of the paper's
//! artifacts by name.
//!
//! ```text
//! lp-sram-suite <artifact> [--paper|--reduced] [--checkpoint <file>]
//!   artifacts: fig4, fig5, table1, table2, table3, march, power,
//!              power-defects, ds-time, monte-carlo, all
//! ```
//!
//! `--checkpoint` (table2 only) appends each completed table cell to
//! the given tab-separated file; rerunning with the same path resumes,
//! skipping cells already logged.

use std::process::ExitCode;

use drftest::case_study::CaseStudy;
use drftest::drv_analysis::Fig4Options;
use drftest::experiments::table1::Table1Options;
use drftest::experiments::{fig4, table1, table2, table3};
use drftest::{
    ds_time_sweep, monte_carlo_drv, power_defect_table, taxonomy, CoverageOptions, DsTimeOptions,
    MonteCarloOptions, PowerDefectOptions, Table2Options, TaxonomyOptions,
};
use march::library;
use regulator::Defect;

fn usage() -> ExitCode {
    eprintln!(
        "usage: lp-sram-suite <artifact> [--paper|--reduced] [--checkpoint <file>]\n\
         artifacts:\n\
           fig4          DRV vs single-transistor Vth variation\n\
           fig5          defect classification (colour coding)\n\
           table1        case-study retention voltages\n\
           table2        minimum defect resistances\n\
           table3        optimized test flow + coverage matrix\n\
           march         March algorithm comparison\n\
           power-defects category-1 (power) defect characterization\n\
           ds-time       deep-sleep dwell-time sweep\n\
           monte-carlo   random-mismatch DRV distribution\n\
           all           everything above with fast settings\n\
         --checkpoint <file> (table2): log completed cells and resume"
    );
    ExitCode::FAILURE
}

fn run(
    artifact: &str,
    paper: bool,
    reduced: bool,
    checkpoint: Option<&str>,
) -> Result<(), Box<dyn std::error::Error>> {
    match artifact {
        "fig4" => {
            let opts = if paper {
                Fig4Options::paper()
            } else {
                Fig4Options::quick()
            };
            println!("{}", fig4::run(&opts)?);
        }
        "fig5" => {
            println!("{}", taxonomy(&TaxonomyOptions::default())?);
        }
        "table1" => {
            let opts = if paper {
                Table1Options::paper()
            } else {
                Table1Options::quick()
            };
            println!("{}", table1::run(&opts)?);
        }
        "table2" => {
            let mut opts = if paper {
                Table2Options::paper()
            } else if reduced {
                Table2Options::reduced()
            } else {
                Table2Options::quick()
            };
            opts.checkpoint = checkpoint.map(std::path::PathBuf::from);
            println!("{}", table2::run(&opts)?);
        }
        "table3" => {
            let mut opts = CoverageOptions::paper();
            if !paper {
                opts.defects = Defect::table2_rows()
                    .into_iter()
                    .filter(|d| !d.is_transient_mechanism())
                    .collect();
            }
            println!("{}", table3::run(&opts)?);
        }
        "march" => {
            for test in library::all(1.0e-3) {
                let (a, b) = test.length_formula();
                println!("{test}  (length {a}N+{b})");
            }
        }
        "power-defects" => {
            println!("{}", power_defect_table(&PowerDefectOptions::default())?);
        }
        "ds-time" => {
            println!("{}", ds_time_sweep(&DsTimeOptions::marginal_df16())?);
        }
        "monte-carlo" => {
            println!("{}", monte_carlo_drv(&MonteCarloOptions::default())?);
            for n in [1u8, 2, 4] {
                let cs = CaseStudy::new(n, sram::StoredBit::One);
                println!("{cs}: paper DRV {:.0} mV", cs.paper_drv_mv());
            }
        }
        "all" => {
            for artifact in [
                "table1",
                "fig4",
                "table2",
                "table3",
                "fig5",
                "march",
                "power-defects",
                "ds-time",
                "monte-carlo",
            ] {
                println!("==== {artifact} ====");
                run(artifact, false, false, None)?;
                println!();
            }
        }
        _ => return Err(format!("unknown artifact `{artifact}`").into()),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(artifact) = args.first() else {
        return usage();
    };
    let paper = args.iter().any(|a| a == "--paper");
    let reduced = args.iter().any(|a| a == "--reduced");
    let checkpoint = args
        .iter()
        .position(|a| a == "--checkpoint")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str);
    match run(artifact, paper, reduced, checkpoint) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            usage()
        }
    }
}
