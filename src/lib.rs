//! `lp-sram-suite` — umbrella crate of the DATE 2013 reproduction
//! *"Test Solution for Data Retention Faults in Low-Power SRAMs"*
//! (Zordan, Bosio, Dilillo, Girard, Todri, Virazel, Badereddine).
//!
//! The suite is organised as a workspace; this crate re-exports every
//! member so examples and downstream users need a single dependency:
//!
//! * [`anasim`] — analog circuit simulator (MNA, Newton, DC/transient);
//! * [`erc`] — static netlist analysis (electrical rule checks) with
//!   the campaign pre-flight gate and the `lint` CLI behind it;
//! * [`process`] — PVT corners, temperature, σ-valued mismatch;
//! * [`sram`] — 6T cell, SNM/DRV analysis, array, power modes,
//!   leakage, retention dynamics, behavioural memory;
//! * [`regulator`] — the embedded voltage regulator with 32
//!   resistive-open defect sites and characterization;
//! * [`march`] — March test notation, engine, algorithm library and
//!   fault-coverage grading;
//! * [`mprove`] — symbolic coverage prover: per-(test, fault-class)
//!   Proven-Detected / Proven-Escaped / Unknown verdicts over the
//!   whole march library, behind the `prove` CLI;
//! * [`drftest`] — the paper's methodology: case studies, DRF_DS fault
//!   model, Fig. 4 / Table I / Table II / Table III experiments, the
//!   optimized test flow.
//!
//! # Quickstart
//!
//! ```no_run
//! use lp_sram_suite::drftest::case_study::CaseStudy;
//! use lp_sram_suite::drftest::test_flow::{
//!     run_flow_against_defect, FlowEnvironment, TestFlow,
//! };
//! use lp_sram_suite::regulator::{Defect, RegulatorDesign};
//! use lp_sram_suite::sram::StoredBit;
//!
//! # fn main() -> Result<(), lp_sram_suite::anasim::Error> {
//! let flow = TestFlow::paper_optimized(1.0e-3);
//! let run = run_flow_against_defect(
//!     &flow,
//!     Defect::new(19),
//!     50.0e3,
//!     &CaseStudy::new(1, StoredBit::One),
//!     &FlowEnvironment::hot_small(),
//!     &RegulatorDesign::lp40nm(),
//! )?;
//! assert!(run.detected());
//! # Ok(())
//! # }
//! ```

pub use anasim;
pub use drftest;
pub use erc;
pub use march;
pub use mprove;
pub use obs;
pub use process;
pub use regulator;
pub use sram;
